"""Per-run fault-injection counters.

Assembled by the scenario builder at result-collection time from the
injector, the network's down-node drop counter, the Gilbert--Elliott
factories, and each recovery's peer tracker.  ``RunResult.signature()``
includes ``as_tuple()`` only when ``any()`` is true, so faults-disabled
runs keep byte-identical signatures with pre-fault baselines.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FaultStats:
    """Counters describing what the fault layer did during one run."""

    #: Nodes actually crashed (scripted + churn).
    crashes: int = 0
    #: Crash attempts skipped because the victim was already down.
    crashes_skipped: int = 0
    #: Nodes restarted after a crash-recovery downtime.
    restarts: int = 0
    #: Partitions opened (scripted + process).
    partitions: int = 0
    #: Links taken down by partition cuts.
    partition_links_cut: int = 0
    #: Partitions healed.
    heals: int = 0
    #: Links brought back up by heals (missing links are skipped).
    heal_links_restored: int = 0
    #: Messages dropped because the destination node was down or gone.
    down_node_drops: int = 0
    #: Gilbert--Elliott GOOD->BAD transitions across all links.
    burst_transitions: int = 0
    #: Drops charged to Gilbert--Elliott loss models (links + OOB).
    burst_drops: int = 0
    #: Per-peer gossip request timeouts observed by degradation trackers.
    peer_timeouts: int = 0
    #: Peers moved onto a suspicion list after repeated timeouts.
    peer_suspicions: int = 0
    #: Gossip sends skipped because the target was suspected or backing off.
    peer_skips: int = 0

    def any(self) -> bool:
        """True when any fault machinery actually fired this run."""
        return any(value != 0 for value in self.as_tuple())

    def as_tuple(self) -> tuple:
        return (
            self.crashes,
            self.crashes_skipped,
            self.restarts,
            self.partitions,
            self.partition_links_cut,
            self.heals,
            self.heal_links_restored,
            self.down_node_drops,
            self.burst_transitions,
            self.burst_drops,
            self.peer_timeouts,
            self.peer_suspicions,
            self.peer_skips,
        )
