"""Execute a :class:`~repro.faults.plan.FaultPlan` against a live simulation.

The injector is wired by the scenario builder and armed via :meth:`start`
before the run.  All scheduling goes through the simulator and all
randomness through the dedicated ``"faults"`` stream, so the same plan and
seed replay the same fault timeline regardless of what the protocols do.

Crash semantics
---------------
A crashed node keeps its links and routing entries (the rest of the tree
still forwards toward it) but every message addressed to it is discarded
on arrival as a counted drop -- ``Network.set_node_down``.  Its gossip
timer and publisher are stopped.  On restart, volatile state is wiped
(event cache, loss-detector streams, learned routes, peer tracker) via
``EventCache.clear`` and ``RecoveryAlgorithm.on_restart``; durable
identity (node id, subscriptions, ``received_ids`` -- the delivery log
lives with the application, not the dispatcher's buffers) survives, and
the timer/publisher resume.

Partition semantics
-------------------
A partition picks a live tree edge, computes the component that edge
separates, and takes *every* link crossing the cut down together (on a
tree that is one link; after concurrent reconfigurations it can be more).
Messages sent into the cut become counted drops.  After the outage the
surviving cut links come back up; links the reconfiguration engine removed
in the meantime stay gone.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.faults.plan import (
    ChurnProcess,
    CrashEvent,
    FaultPlan,
    PartitionEvent,
    PartitionProcess,
)
from repro.faults.stats import FaultStats
from repro.network.network import Network
from repro.pubsub.system import PubSubSystem
from repro.sim.engine import Simulator

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives crashes, restarts, and partitions from a declarative plan.

    Parameters
    ----------
    sim, network, system:
        The simulation engine, the network (down-node bookkeeping), and the
        pub-sub system (dispatcher access).
    recoveries:
        One recovery algorithm per dispatcher, indexed by node id; crashed
        nodes have their gossip timer stopped and their volatile recovery
        state wiped on restart.
    publishers:
        One publisher process per dispatcher, indexed by node id (may be
        empty for harness-driven tests).
    rng:
        The dedicated ``"faults"`` random stream.
    plan:
        What to inject.
    locality:
        Sharded runs replicate the injector on every shard so network state
        (down nodes, cut links) and ``"faults"``-stream draws stay identical
        everywhere, but a restarted node's timers must only be re-armed on
        the shard that owns it.  ``locality[node_id]`` is that ownership
        test; ``None`` (serial runs) re-arms unconditionally.  ``callbacks``
        counts the injector's engine-event firings -- replicated on every
        shard but single events in a serial run -- for the merged
        ``sim_events_processed`` correction.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        system: PubSubSystem,
        recoveries: Sequence,
        publishers: Sequence,
        rng: random.Random,
        plan: FaultPlan,
        locality: Optional[Sequence[bool]] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.system = system
        self.recoveries = recoveries
        self.publishers = publishers
        self.rng = rng
        self.plan = plan
        self.locality = locality
        self.callbacks = 0
        self.stats = FaultStats()
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm every scripted event and stochastic process."""
        if self._started:
            return
        self._started = True
        sim = self.sim
        for crash in self.plan.crashes:
            sim.schedule_call_at(crash.at, self._crash, crash.node, crash.duration)
        for partition in self.plan.partitions:
            sim.schedule_call_at(
                partition.at, self._partition, partition.edge, partition.duration
            )
        churn = self.plan.churn
        if churn is not None:
            sim.schedule_call_at(
                churn.start + self.rng.expovariate(churn.rate), self._churn_tick
            )
        process = self.plan.partition_process
        if process is not None:
            sim.schedule_call_at(
                process.start + self.rng.expovariate(1.0 / process.interval),
                self._partition_tick,
            )

    # ------------------------------------------------------------------
    # Crashes
    # ------------------------------------------------------------------
    def _crash(self, node_id: int, duration: Optional[float]) -> None:
        # ``callbacks`` tallies the four callbacks reachable under shard
        # validation (scripted crashes/partitions and their restart/heal
        # follow-ups); the churn/partition processes that would skew the
        # tally inline-call these are forbidden in sharded configs.
        self.callbacks += 1
        network = self.network
        if network.is_down(node_id):
            self.stats.crashes_skipped += 1
            return
        network.set_node_down(node_id, True)
        if node_id < len(self.recoveries):
            self.recoveries[node_id].stop()
        if node_id < len(self.publishers):
            self.publishers[node_id].stop()
        self.stats.crashes += 1
        if duration is not None:
            self.sim.schedule_call(duration, self._restart, node_id)

    def _restart(self, node_id: int) -> None:
        self.callbacks += 1
        network = self.network
        if not network.is_down(node_id):
            return  # already restarted (defensive; plans should not overlap)
        dispatcher = self.system.dispatchers[node_id]
        # Volatile buffers do not survive the crash...
        dispatcher.cache.clear()
        network.set_node_down(node_id, False)
        # State wipes replay on every shard (replicas stay in lockstep);
        # timers are re-armed only where the node actually runs.
        local = self.locality is None or self.locality[node_id]
        if node_id < len(self.recoveries):
            recovery = self.recoveries[node_id]
            recovery.on_restart()
            if local:
                recovery.start()
        if local and node_id < len(self.publishers):
            self.publishers[node_id].start()
        self.stats.restarts += 1

    def _churn_tick(self) -> None:
        churn = self.plan.churn
        assert churn is not None
        now = self.sim.now
        if churn.end is not None and now > churn.end:
            return
        rng = self.rng
        victim = rng.randrange(self.network.node_count)
        if churn.crash_stop_fraction > 0.0 and rng.random() < churn.crash_stop_fraction:
            duration: Optional[float] = None
        else:
            duration = rng.expovariate(1.0 / churn.mean_downtime)
        self._crash(victim, duration)
        self.sim.schedule_call(rng.expovariate(churn.rate), self._churn_tick)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def _partition(
        self, edge: Optional[Tuple[int, int]], duration: float
    ) -> None:
        self.callbacks += 1
        network = self.network
        if edge is None:
            edges = network.edges()
            if not edges:
                return
            edge = edges[self.rng.randrange(len(edges))]
        elif not network.has_link(*edge):
            return  # scripted edge already gone (reconfiguration raced us)
        cut = self._cut_links(edge)
        for link_edge in cut:
            network.link(*link_edge).set_up(False)
        self.stats.partitions += 1
        self.stats.partition_links_cut += len(cut)
        self.sim.schedule_call(duration, self._heal, tuple(cut))

    def _cut_links(self, edge: Tuple[int, int]) -> List[Tuple[int, int]]:
        """Links with exactly one endpoint in the component ``edge`` splits off.

        BFS from ``edge[0]`` with the chosen edge removed finds the island;
        on a tree the cut is the edge itself, but concurrent
        reconfigurations can have added other paths.
        """
        network = self.network
        a, b = edge
        island = {a}
        frontier = [a]
        while frontier:
            node = frontier.pop()
            for neighbor in network.neighbors(node):
                if (node, neighbor) in ((a, b), (b, a)):
                    continue
                if neighbor not in island:
                    island.add(neighbor)
                    frontier.append(neighbor)
        if b in island:
            # Another path rejoins the two sides; cutting just this edge
            # degrades the tree but partitions nothing extra.
            return [(a, b) if a < b else (b, a)]
        return [
            crossing
            for crossing in network.edges()
            if (crossing[0] in island) != (crossing[1] in island)
        ]

    def _heal(self, cut: Tuple[Tuple[int, int], ...]) -> None:
        self.callbacks += 1
        network = self.network
        restored = 0
        for edge in cut:
            # The reconfiguration engine may have removed the link during
            # the outage; healed partitions never resurrect removed links.
            if network.has_link(*edge):
                network.link(*edge).set_up(True)
                restored += 1
        self.stats.heals += 1
        self.stats.heal_links_restored += restored

    def _partition_tick(self) -> None:
        process = self.plan.partition_process
        assert process is not None
        now = self.sim.now
        if process.end is not None and now > process.end:
            return
        self._partition(None, process.duration)
        self.sim.schedule_call(
            self.rng.expovariate(1.0 / process.interval), self._partition_tick
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultInjector crashes={self.stats.crashes} "
            f"restarts={self.stats.restarts} partitions={self.stats.partitions}>"
        )
