"""Deterministic fault injection.

The paper evaluates epidemic recovery under i.i.d. per-transmission loss
(ε) and single-link reconfiguration (ρ); its motivating scenarios -- mobile
and peer-to-peer networks -- also fail in *bursts*, *partitions*, and *node
crashes*.  This package adds those fault classes as a composable layer over
the existing simulation:

* :class:`~repro.faults.plan.FaultPlan` -- a declarative, picklable plan of
  scripted one-shot events (crash / restart / partition) plus stochastic
  processes (churn, recurring partitions), all driven by a named
  :class:`~repro.sim.rng.RandomStreams` stream so runs are replayable;
* :class:`~repro.faults.loss.LossModel` -- a pluggable per-link loss
  protocol with the paper's Bernoulli model as the default and a
  Gilbert--Elliott two-state burst-loss model as the alternative;
* :class:`~repro.faults.injector.FaultInjector` -- the engine that executes
  a plan against a live simulation (crash-stop, crash-recovery with
  volatile-buffer wipes, partition outage and heal);
* :class:`~repro.faults.stats.FaultStats` -- the per-run counters surfaced
  through :class:`~repro.scenarios.results.RunResult`.

Graceful degradation of the recovery layer under these faults (per-peer
request timeouts, bounded exponential backoff with jitter, and a suspicion
list) lives in :mod:`repro.recovery.degrade`; ``docs/FAULTS.md`` documents
the fault model catalogue and the degradation semantics.
"""

from repro.faults.loss import (
    BernoulliLoss,
    GilbertElliottConfig,
    GilbertElliottFactory,
    GilbertElliottLoss,
    LossModel,
)
from repro.faults.plan import (
    ChurnProcess,
    CrashEvent,
    FaultPlan,
    PartitionEvent,
    PartitionProcess,
    scripted_crashes,
)
from repro.faults.injector import FaultInjector
from repro.faults.stats import FaultStats

__all__ = [
    "LossModel",
    "BernoulliLoss",
    "GilbertElliottConfig",
    "GilbertElliottLoss",
    "GilbertElliottFactory",
    "CrashEvent",
    "PartitionEvent",
    "ChurnProcess",
    "PartitionProcess",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "scripted_crashes",
]
