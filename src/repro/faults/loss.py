"""Pluggable per-transmission loss models.

The paper's network model drops each transmission independently with
probability ε (Bernoulli loss).  Real wireless and overlay links lose
packets in *bursts*: once a link degrades it tends to stay degraded for a
while.  The classic two-state Gilbert--Elliott chain captures this with
four parameters and reduces to Bernoulli loss when the two states have the
same loss probability.

Models are stateful per link and draw exclusively from the injected
``random.Random`` (the shared ``"loss"`` stream), so runs remain
deterministic and replayable.  ``Link.transmit`` / ``Network.send_oob``
keep their original inline Bernoulli draw when no model is installed --
faults-disabled runs are byte-identical to the legacy behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol


class LossModel(Protocol):
    """Decides, per transmission, whether the packet is lost.

    Implementations may keep per-link state (e.g. the Gilbert--Elliott
    channel state) but must derive all randomness from the ``rng`` handed
    in, which the network wires to the shared ``"loss"`` stream.
    """

    def should_drop(self, rng: random.Random) -> bool:
        """Advance the model one transmission; True means drop it."""
        ...


class BernoulliLoss:
    """The paper's i.i.d. loss model: drop with fixed probability ε.

    Behaviourally identical to the inline ``error_rate`` draw in
    ``Link.transmit`` (including consuming no randomness when ε == 0), so
    installing it explicitly does not perturb the draw sequence.
    """

    __slots__ = ("error_rate",)

    def __init__(self, error_rate: float) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        self.error_rate = error_rate

    def should_drop(self, rng: random.Random) -> bool:
        return self.error_rate > 0.0 and rng.random() < self.error_rate

    def __repr__(self) -> str:
        return f"BernoulliLoss(error_rate={self.error_rate})"


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Parameters of the two-state Gilbert--Elliott burst-loss chain.

    The channel is either GOOD or BAD; each transmission first makes one
    state-transition draw (GOOD→BAD with ``p_good_bad``, BAD→GOOD with
    ``p_bad_good``) and is then lost with the loss probability of the
    resulting state.  The stationary fraction of time spent BAD is
    ``p_good_bad / (p_good_bad + p_bad_good)`` and the mean burst length is
    ``1 / p_bad_good`` transmissions.
    """

    #: Per-transmission probability of entering the BAD state from GOOD.
    p_good_bad: float
    #: Per-transmission probability of returning to GOOD from BAD.
    p_bad_good: float
    #: Loss probability while GOOD (0 for the classic Gilbert model).
    loss_good: float = 0.0
    #: Loss probability while BAD (1 for the classic Gilbert model).
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_good_bad", "p_bad_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.p_good_bad + self.p_bad_good <= 0.0:
            raise ValueError("p_good_bad + p_bad_good must be positive")
        if self.loss_bad < self.loss_good:
            raise ValueError("loss_bad must be >= loss_good")

    def stationary_loss_rate(self) -> float:
        """Long-run loss fraction ε equivalent to this chain."""
        pi_bad = self.p_good_bad / (self.p_good_bad + self.p_bad_good)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def mean_burst_length(self) -> float:
        """Expected number of consecutive transmissions spent BAD."""
        return 1.0 / self.p_bad_good if self.p_bad_good > 0.0 else float("inf")

    @classmethod
    def from_epsilon(
        cls,
        epsilon: float,
        mean_burst_length: float = 5.0,
        loss_bad: float = 1.0,
        loss_good: float = 0.0,
    ) -> "GilbertElliottConfig":
        """Build a chain whose stationary loss rate equals the paper's ε.

        Solves ``ε = π_bad·loss_bad + (1−π_bad)·loss_good`` for π_bad, then
        fixes the BAD-state dwell time to ``mean_burst_length``
        transmissions.  This makes burst-loss runs directly comparable to
        the paper's Bernoulli curves at the same average loss.
        """
        if not loss_good <= epsilon <= loss_bad:
            raise ValueError(
                f"epsilon must be in [loss_good, loss_bad] = "
                f"[{loss_good}, {loss_bad}], got {epsilon}"
            )
        if mean_burst_length < 1.0:
            raise ValueError("mean_burst_length must be >= 1 transmission")
        pi_bad = (epsilon - loss_good) / (loss_bad - loss_good)
        p_bad_good = 1.0 / mean_burst_length
        if pi_bad >= 1.0:
            raise ValueError("epsilon == loss_bad leaves no GOOD state")
        p_good_bad = pi_bad * p_bad_good / (1.0 - pi_bad)
        if p_good_bad > 1.0:
            raise ValueError(
                "epsilon too close to loss_bad for this burst length; "
                "shorten mean_burst_length or raise loss_bad"
            )
        return cls(
            p_good_bad=p_good_bad,
            p_bad_good=p_bad_good,
            loss_good=loss_good,
            loss_bad=loss_bad,
        )


class GilbertElliottLoss:
    """Stateful per-link instance of the Gilbert--Elliott chain.

    Starts GOOD.  Counts BAD-entry transitions and in-model drops so
    ``FaultStats`` can report burstiness without touching the hot path.
    """

    __slots__ = ("config", "bad", "transitions", "drops")

    def __init__(self, config: GilbertElliottConfig) -> None:
        self.config = config
        self.bad = False
        self.transitions = 0
        self.drops = 0

    def should_drop(self, rng: random.Random) -> bool:
        config = self.config
        if self.bad:
            if rng.random() < config.p_bad_good:
                self.bad = False
        elif rng.random() < config.p_good_bad:
            self.bad = True
            self.transitions += 1
        loss = config.loss_bad if self.bad else config.loss_good
        if loss > 0.0 and rng.random() < loss:
            self.drops += 1
            return True
        return False

    def __repr__(self) -> str:
        state = "BAD" if self.bad else "GOOD"
        return f"GilbertElliottLoss({self.config!r}, state={state})"


class GilbertElliottFactory:
    """Per-link model factory handed to ``Network`` at construction.

    ``Network.add_link`` calls the factory once per link so every link gets
    an independent channel state; the factory keeps the instances so the
    builder can aggregate burst counters into ``FaultStats`` afterwards.
    """

    def __init__(self, config: GilbertElliottConfig) -> None:
        self.config = config
        self.models: list[GilbertElliottLoss] = []

    def __call__(self, node_a: int, node_b: int) -> GilbertElliottLoss:
        model = GilbertElliottLoss(self.config)
        self.models.append(model)
        return model

    @property
    def transitions(self) -> int:
        return sum(model.transitions for model in self.models)

    @property
    def drops(self) -> int:
        return sum(model.drops for model in self.models)
