"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, hashable, picklable description of every
fault a run should experience: scripted one-shot events (crash this node at
t=2, partition that subtree at t=3) plus stochastic processes (Poisson
churn, recurring partitions) whose randomness comes from the dedicated
``"faults"`` stream of :class:`~repro.sim.rng.RandomStreams`.  Because the
plan is pure data on ``SimulationConfig``, the same plan + seed replays the
same fault schedule under any ``jobs=`` setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.faults.loss import GilbertElliottConfig


@dataclass(frozen=True)
class CrashEvent:
    """Scripted crash of one node at a fixed simulation time.

    ``duration=None`` is crash-stop: the node never returns.  Otherwise the
    node restarts after ``duration`` seconds with its volatile state (event
    cache, loss-detector streams, gossip routes) wiped.
    """

    #: Dispatcher id to crash.
    node: int
    #: Simulation time of the crash (seconds).
    at: float
    #: Downtime before restart; None means crash-stop (no restart).
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.at < 0.0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.duration is not None and self.duration <= 0.0:
            raise ValueError(f"duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class PartitionEvent:
    """Scripted partition: cut the links separating a subtree, then heal.

    With ``edge=None`` the injector picks a random live tree edge from the
    ``"faults"`` stream; the component on one side becomes the partitioned
    island.  All links crossing the cut go down together and come back up
    after ``duration`` seconds (links the reconfiguration engine removed in
    the meantime are skipped, not resurrected).
    """

    #: Onset time of the partition (seconds).
    at: float
    #: Outage length before the cut heals (seconds).
    duration: float
    #: Specific tree edge to cut, or None for a random live edge.
    edge: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.edge is not None:
            object.__setattr__(self, "edge", tuple(self.edge))
            if len(self.edge) != 2 or self.edge[0] == self.edge[1]:
                raise ValueError(f"edge must join two distinct nodes, got {self.edge}")


@dataclass(frozen=True)
class ChurnProcess:
    """Poisson node-churn: random crashes at ``rate`` per second.

    Victims are drawn uniformly; already-down victims are skipped (counted,
    not rescheduled).  Each crash restarts after an exponential downtime
    with mean ``mean_downtime``, except a ``crash_stop_fraction`` of
    crashes that are permanent.
    """

    #: Expected crashes per second across the whole system.
    rate: float
    #: Mean of the exponential downtime before restart (seconds).
    mean_downtime: float = 1.0
    #: Time the process switches on (seconds).
    start: float = 0.0
    #: Time the process switches off; None runs to the end of the sim.
    end: Optional[float] = None
    #: Probability a churn crash is crash-stop (never restarts).
    crash_stop_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.mean_downtime <= 0.0:
            raise ValueError(f"mean_downtime must be > 0, got {self.mean_downtime}")
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError("end must be > start")
        if not 0.0 <= self.crash_stop_fraction <= 1.0:
            raise ValueError("crash_stop_fraction must be in [0, 1]")


@dataclass(frozen=True)
class PartitionProcess:
    """Recurring random partitions: onsets form a Poisson process."""

    #: Mean seconds between partition onsets (exponential inter-arrivals).
    interval: float
    #: Outage length of each partition before it heals (seconds).
    duration: float
    #: Time the process switches on (seconds).
    start: float = 0.0
    #: Time the process switches off; None runs to the end of the sim.
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval <= 0.0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError("end must be > start")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that can go wrong in one run, as pure data.

    Scripted events and stochastic processes compose freely; loss-model
    fields replace the default Bernoulli draw on tree links and/or the
    out-of-band channel.  An empty plan is valid and behaves exactly like
    ``faults=None``.
    """

    #: Scripted node crashes (crash-stop or crash-recovery).
    crashes: Tuple[CrashEvent, ...] = ()
    #: Scripted subtree partitions.
    partitions: Tuple[PartitionEvent, ...] = ()
    #: Poisson node-churn process, if any.
    churn: Optional[ChurnProcess] = None
    #: Recurring-partition process, if any.
    partition_process: Optional[PartitionProcess] = None
    #: Burst-loss model for tree links (replaces the Bernoulli ε draw).
    link_loss: Optional[GilbertElliottConfig] = None
    #: Burst-loss model for the out-of-band channel.
    oob_loss: Optional[GilbertElliottConfig] = None

    def __post_init__(self) -> None:
        # Accept lists/generators for ergonomics; store hashable tuples.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))

    def validate(self, n_dispatchers: int) -> None:
        """Check node ids and scripted edges against the topology size."""
        for crash in self.crashes:
            if crash.node >= n_dispatchers:
                raise ValueError(
                    f"CrashEvent.node {crash.node} out of range for "
                    f"{n_dispatchers} dispatchers"
                )
        for partition in self.partitions:
            if partition.edge is not None and any(
                node >= n_dispatchers for node in partition.edge
            ):
                raise ValueError(
                    f"PartitionEvent.edge {partition.edge} out of range for "
                    f"{n_dispatchers} dispatchers"
                )

    def has_injectors(self) -> bool:
        """True when the plan needs a FaultInjector (beyond loss models)."""
        return bool(
            self.crashes
            or self.partitions
            or self.churn is not None
            or self.partition_process is not None
        )

    def is_empty(self) -> bool:
        return not (
            self.has_injectors()
            or self.link_loss is not None
            or self.oob_loss is not None
        )


def scripted_crashes(
    nodes: Iterable[int], at: float, duration: Optional[float]
) -> Tuple[CrashEvent, ...]:
    """Convenience: the same crash window applied to several nodes."""
    return tuple(CrashEvent(node=node, at=at, duration=duration) for node in nodes)
