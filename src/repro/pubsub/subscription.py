"""Per-dispatcher subscription tables.

A subscription table maps each pattern to the set of *directions* events
matching it must be forwarded to.  A direction is either a neighbor node id
(the subscription arrived from that neighbor, i.e. a subscriber lives in the
subtree behind it) or the :data:`~repro.pubsub.pattern.LOCAL` sentinel (one
of this dispatcher's own clients subscribed).

The table also remembers, per pattern, the directions a subscription has
already been forwarded to, implementing the paper's optimization:
*"avoiding subscription forwarding of the same event pattern in the same
direction"*.

Compact representation
----------------------
Directions are stored as *bitmasks* over a small per-table direction
registry (a node has at most ``max_degree`` neighbors plus LOCAL), not as
one ``set`` object per pattern.  With the pattern universe size passed in
(``n_patterns``), the per-pattern masks live in two flat ``array('Q')``
columns indexed by the interned pattern id -- ~1 KB per node at Π = 70
where the set-of-sets layout cost ~37 KB (see docs/PERFORMANCE.md,
"Compact state & scaling").  Without the size hint the masks fall back to a
dict keyed by pattern, preserving the open-universe API for tests and
interactive use.  All query methods return the same deterministic (sorted)
collections in either mode.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.pubsub.pattern import LOCAL

__all__ = ["SubscriptionTable"]

#: Memo entries are dropped wholesale past this size -- a safety valve for
#: adversarial workloads; realistic pattern universes stay far below it.
_MATCH_CACHE_LIMIT = 1 << 16

#: Dense masks are 64-bit array slots; a table referencing more than 64
#: distinct directions over its lifetime first compacts the registry
#: (dropping directions no mask still uses) before giving up.
_DENSE_MASK_BITS = 64

_Masks = Union[Dict[int, int], array]


class SubscriptionTable:
    """Routing state of one dispatcher.

    The structure is a direction *bitmask* per pattern: bit ``i`` set means
    events matching the pattern are forwarded toward ``_dir_ids[i]``.  All
    query methods return deterministic (sorted) collections so that
    simulations are reproducible regardless of hash randomization.

    Parameters
    ----------
    n_patterns:
        Size of the pattern universe (Π).  When given, masks are stored in
        flat ``array('Q')`` columns indexed by pattern id (the compact
        per-node layout); when ``None`` they live in a dict keyed by
        pattern (open universe, test-friendly).

    Matching memo
    -------------
    Event contents repeat heavily within a run (a handful of patterns,
    drawn over and over), while subscription tables mutate rarely (never,
    in the paper's stable-subscription regime).  The per-event routing
    queries -- :meth:`matching_directions_sorted` and
    :meth:`matches_locally` -- are therefore memoized on the event's
    pattern tuple (or its interned content id, see
    :meth:`matching_directions_for`); *any* mutation of the table
    invalidates the whole memo (see :meth:`_invalidate`).
    """

    __slots__ = ("_size", "_dense", "_dir_ids", "_dir_bits", "_masks",
                 "_fwd_masks", "_known", "_match_cache", "_mask_intern")

    def __init__(self, n_patterns: Optional[int] = None) -> None:
        if n_patterns is not None and n_patterns < 0:
            raise ValueError(f"n_patterns must be >= 0, got {n_patterns}")
        self._size = n_patterns
        self._dense = n_patterns is not None
        #: direction registry: bit index -> direction id, and its inverse.
        self._dir_ids: List[int] = []
        self._dir_bits: Dict[int, int] = {}
        self._masks: _Masks
        self._fwd_masks: _Masks
        if self._dense:
            self._masks = array("Q", bytes(8 * n_patterns))
            self._fwd_masks = array("Q", bytes(8 * n_patterns))
        else:
            self._masks = {}
            self._fwd_masks = {}
        #: number of patterns with a nonzero direction mask (kept
        #: incrementally so ``len(table)`` stays O(1) in dense mode).
        self._known = 0
        #: content key (pattern tuple or interned content id) -> sorted
        #: direction tuple (LOCAL first if present, since LOCAL is -1 and
        #: node ids are >= 0).
        self._match_cache: Dict[object, Tuple[int, ...]] = {}
        #: direction-mask -> decoded tuple intern pool.  Many memo entries
        #: decode to the same direction set (a table with d live directions
        #: has at most 2^(d+1) distinct tuples, while the memo holds one
        #: entry per distinct event content), so sharing one tuple per mask
        #: cuts the memo's value storage by the repetition factor.
        self._mask_intern: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Direction registry
    # ------------------------------------------------------------------
    def _register_direction(self, direction: int) -> int:
        """Bit value for ``direction``, registering it on first use.

        Registration invalidates the matching memo (the registry is memo
        backing state); repeated registrations are pure lookups and happen
        on the callers' fast paths via ``_dir_bits.get``.
        """
        self._invalidate()
        bits = self._dir_bits
        bit = bits.get(direction)
        if bit is None:
            if self._dense and len(self._dir_ids) >= _DENSE_MASK_BITS:
                self._compact_registry()
                bits = self._dir_bits  # compaction rebinds the registry
                bit = bits.get(direction)
                if bit is not None:
                    return 1 << bit
            bit = len(self._dir_ids)
            if self._dense and bit >= _DENSE_MASK_BITS:
                # A genuine hub: more than 64 live directions (scale-free
                # overlays concentrate degree).  Migrate this one table to
                # the sparse layout, whose Python-int masks are unbounded;
                # the rest of the network stays dense.
                self._go_sparse()
            self._dir_ids.append(direction)
            bits[direction] = bit
        return 1 << bit

    def _go_sparse(self) -> None:
        """Switch from the dense array columns to dict masks.

        Used when a table outgrows the 64 direction bits an ``array('Q')``
        slot offers.  Registry, bit assignments, and mask *values* are
        preserved -- only the storage changes -- so every query keeps
        returning the same results.
        """
        self._invalidate()  # memo backing state changes representation
        self._masks = {
            pattern: mask for pattern, mask in enumerate(self._masks) if mask
        }
        self._fwd_masks = {
            pattern: mask
            for pattern, mask in enumerate(self._fwd_masks)
            if mask
        }
        self._dense = False

    def _compact_registry(self) -> None:
        """Rebuild the registry keeping only directions some mask still
        uses (reconfiguration churn retires old neighbors' bits)."""
        used = 0
        for mask in self._iter_masks():
            used |= mask
        for mask in self._iter_fwd_masks():
            used |= mask
        survivors = [
            direction
            for bit, direction in enumerate(self._dir_ids)
            if used >> bit & 1
        ]
        remap = {
            self._dir_bits[direction]: new_bit
            for new_bit, direction in enumerate(survivors)
        }
        self._remap_masks(self._masks, remap)
        self._remap_masks(self._fwd_masks, remap)
        self._dir_ids = survivors
        self._dir_bits = {d: i for i, d in enumerate(survivors)}

    def _iter_masks(self) -> Iterable[int]:
        return self._masks if self._dense else self._masks.values()

    def _iter_fwd_masks(self) -> Iterable[int]:
        return self._fwd_masks if self._dense else self._fwd_masks.values()

    def _remap_masks(self, masks: _Masks, remap: Dict[int, int]) -> None:
        items = (
            enumerate(masks)
            if self._dense
            else list(masks.items())  # type: ignore[union-attr]
        )
        for key, mask in items:
            new_mask = 0
            while mask:
                low = mask & -mask
                bit = low.bit_length() - 1
                new_bit = remap.get(bit)
                if new_bit is not None:
                    new_mask |= 1 << new_bit
                mask ^= low
            masks[key] = new_mask  # type: ignore[index]

    def _decode(self, mask: int) -> List[int]:
        """Sorted direction ids of one mask."""
        dir_ids = self._dir_ids
        result = []
        while mask:
            low = mask & -mask
            result.append(dir_ids[low.bit_length() - 1])
            mask ^= low
        result.sort()
        return result

    def _mask_of(self, pattern: int) -> int:
        if self._dense:
            if 0 <= pattern < self._size:  # type: ignore[operator]
                return self._masks[pattern]
            return 0
        return self._masks.get(pattern, 0)  # type: ignore[union-attr]

    def _fwd_mask_of(self, pattern: int) -> int:
        if self._dense:
            if 0 <= pattern < self._size:  # type: ignore[operator]
                return self._fwd_masks[pattern]
            return 0
        return self._fwd_masks.get(pattern, 0)  # type: ignore[union-attr]

    def _known_patterns(self) -> List[int]:
        if self._dense:
            masks = self._masks
            return [p for p in range(self._size) if masks[p]]  # type: ignore[arg-type]
        return sorted(self._masks)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, pattern: int, direction: int) -> bool:
        """Record that ``direction`` wants events matching ``pattern``.

        Returns ``True`` if the pattern was previously unknown to this
        table (i.e. this is the first direction for it) -- the caller uses
        this to decide whether to propagate the subscription further.
        """
        self._invalidate()
        if self._dense and not 0 <= pattern < self._size:  # type: ignore[operator]
            raise ValueError(
                f"pattern {pattern} outside dense universe [0, {self._size})"
            )
        bit_value = self._register_direction(direction)
        mask = self._mask_of(pattern)
        if mask == 0:
            self._known += 1
            self._masks[pattern] = bit_value  # type: ignore[index]
            return True
        self._masks[pattern] = mask | bit_value  # type: ignore[index]
        return False

    def remove(self, pattern: int, direction: int) -> None:
        """Forget one direction; drops the pattern entirely when empty.

        Forwarded marks are *kept*: they record what we told neighbors,
        which stays true until an explicit unsubscription is sent
        (``unmark_forwarded``) -- dropping them here would leave neighbors
        believing we still want the pattern.
        """
        mask = self._mask_of(pattern)
        if mask == 0:
            return
        self._invalidate()
        bit = self._dir_bits.get(direction)
        if bit is None or not mask >> bit & 1:
            return
        mask &= ~(1 << bit)
        if mask == 0:
            self._known -= 1
            if self._dense:
                self._masks[pattern] = 0
            else:
                del self._masks[pattern]  # type: ignore[union-attr]
        else:
            self._masks[pattern] = mask  # type: ignore[index]

    def clear(self) -> None:
        """Drop all routing state (used when routes are rebuilt)."""
        self._invalidate()
        if self._dense:
            zeros = bytes(8 * self._size)  # type: ignore[operator]
            self._masks = array("Q", zeros)
            self._fwd_masks = array("Q", zeros)
        else:
            self._masks.clear()  # type: ignore[union-attr]
            self._fwd_masks.clear()  # type: ignore[union-attr]
        self._dir_ids.clear()
        self._dir_bits.clear()
        self._known = 0

    def drop_direction(self, direction: int) -> None:
        """Remove a neighbor from every pattern (neighbor disappeared)."""
        self._invalidate()
        bit = self._dir_bits.get(direction)
        if bit is None:
            return
        keep = ~(1 << bit)
        if self._dense:
            masks = self._masks
            for pattern in range(self._size):  # type: ignore[arg-type]
                mask = masks[pattern]
                if mask:
                    mask &= keep
                    masks[pattern] = mask
                    if mask == 0:
                        self._known -= 1
            fwd_masks = self._fwd_masks
            for pattern in range(self._size):  # type: ignore[arg-type]
                mask = fwd_masks[pattern]
                if mask:
                    fwd_masks[pattern] = mask & keep
        else:
            empty = []
            for pattern, mask in self._masks.items():  # type: ignore[union-attr]
                mask &= keep
                if mask:
                    self._masks[pattern] = mask  # type: ignore[index]
                else:
                    empty.append(pattern)
            for pattern in empty:
                del self._masks[pattern]  # type: ignore[union-attr]
                self._known -= 1
            for pattern, mask in self._fwd_masks.items():  # type: ignore[union-attr]
                self._fwd_masks[pattern] = mask & keep  # type: ignore[index]

    # ------------------------------------------------------------------
    # Forwarding dedup (the paper's optimization)
    # ------------------------------------------------------------------
    def mark_forwarded(self, pattern: int, direction: int) -> bool:
        """Record that the subscription for ``pattern`` was propagated to
        ``direction``.  Returns ``False`` if it already had been (the caller
        must then *not* forward again)."""
        bit = self._dir_bits.get(direction)
        if bit is None:
            bit_value = self._register_direction(direction)
        else:
            bit_value = 1 << bit
        mask = self._fwd_mask_of(pattern)
        if mask & bit_value:
            return False
        self._fwd_masks[pattern] = mask | bit_value  # type: ignore[index]
        return True

    def unmark_forwarded(self, pattern: int, direction: int) -> None:
        """Forget that ``pattern`` was propagated to ``direction`` (after an
        unsubscription), so a future re-subscription propagates again."""
        bit = self._dir_bits.get(direction)
        if bit is None:
            return
        mask = self._fwd_mask_of(pattern)
        if not mask >> bit & 1:
            return
        mask &= ~(1 << bit)
        if mask == 0 and not self._dense:
            del self._fwd_masks[pattern]  # type: ignore[union-attr]
        else:
            self._fwd_masks[pattern] = mask  # type: ignore[index]

    def was_forwarded(self, pattern: int, direction: int) -> bool:
        bit = self._dir_bits.get(direction)
        return bit is not None and bool(self._fwd_mask_of(pattern) >> bit & 1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def directions(self, pattern: int) -> List[int]:
        """Sorted directions subscribed to ``pattern`` (may include LOCAL)."""
        return self._decode(self._mask_of(pattern))

    def neighbor_directions(self, pattern: int) -> List[int]:
        """Sorted *neighbor* directions for ``pattern`` (LOCAL excluded)."""
        mask = self._mask_of(pattern)
        local_bit = self._dir_bits.get(LOCAL)
        if local_bit is not None:
            mask &= ~(1 << local_bit)
        return self._decode(mask)

    def has_pattern(self, pattern: int) -> bool:
        return self._mask_of(pattern) != 0

    def is_local(self, pattern: int) -> bool:
        """True iff this dispatcher itself subscribes to ``pattern``."""
        local_bit = self._dir_bits.get(LOCAL)
        return local_bit is not None and bool(
            self._mask_of(pattern) >> local_bit & 1
        )

    def patterns(self) -> List[int]:
        """All patterns known to the table (own + forwarded), sorted.

        This is the pool the *push* algorithm draws from ("p is selected by
        considering the whole subscription table").
        """
        return self._known_patterns()

    def local_patterns(self) -> List[int]:
        """Patterns subscribed locally, sorted.

        This is the pool the *subscriber-based pull* draws from ("chooses a
        pattern p among the ones associated to subscriptions issued
        locally").
        """
        local_bit = self._dir_bits.get(LOCAL)
        if local_bit is None:
            return []
        if self._dense:
            masks = self._masks
            return [
                p
                for p in range(self._size)  # type: ignore[arg-type]
                if masks[p] >> local_bit & 1
            ]
        return sorted(
            pattern
            for pattern, mask in self._masks.items()  # type: ignore[union-attr]
            if mask >> local_bit & 1
        )

    def _invalidate(self) -> None:
        """Drop the matching memo; called on every table mutation.

        The mask-intern pool goes with it: decoded tuples are a function
        of the direction registry, which mutations may rewrite.
        """
        if self._match_cache:
            self._match_cache.clear()
        if self._mask_intern:
            self._mask_intern.clear()

    def _matching_tuple(self, patterns: Iterable[int]) -> Tuple[int, ...]:
        """Memoized sorted direction tuple for one event content."""
        key = patterns if type(patterns) is tuple else tuple(patterns)
        cache = self._match_cache
        cached = cache.get(key)
        if cached is not None:
            return cached
        value = self._compute_matching(key)
        if len(cache) >= _MATCH_CACHE_LIMIT:
            cache.clear()
        cache[key] = value
        return value

    def _compute_matching(self, key: Tuple[int, ...]) -> Tuple[int, ...]:
        mask = 0
        if self._dense:
            masks = self._masks
            size = self._size
            for pattern in key:
                if 0 <= pattern < size:  # type: ignore[operator]
                    mask |= masks[pattern]
        else:
            masks = self._masks
            for pattern in key:
                mask |= masks.get(pattern, 0)  # type: ignore[union-attr]
        interned = self._mask_intern.get(mask)
        if interned is None:
            interned = self._mask_intern[mask] = tuple(self._decode(mask))
        return interned

    def matching_directions(self, patterns: Iterable[int]) -> Set[int]:
        """Union of directions over the given event content.

        This is the reverse-path routing decision for an event: one event
        may match several subscriptions, laid down on the same tree, so the
        forwarding set is the union (each direction receives one copy).
        """
        return set(self._matching_tuple(patterns))

    def matching_directions_sorted(self, patterns: Iterable[int]) -> Tuple[int, ...]:
        """Sorted direction tuple for one event content (memoized).

        The hot-path variant of :meth:`matching_directions`: the dispatcher
        forwards in this exact order, so handing out a pre-sorted tuple
        kills the per-forward ``sorted()``.  With LOCAL = -1 and node ids
        >= 0, LOCAL -- when present -- is always the first element.
        """
        return self._matching_tuple(patterns)

    def matching_directions_for(
        self, content_id: int, patterns: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        """Sorted direction tuple keyed by an interned content id.

        The large-scale hot path: when event contents are interned (see
        :meth:`repro.pubsub.pattern.PatternSpace.intern_content`), the memo
        key is the content's small int -- hashed in a few ns -- instead of
        the pattern tuple.  Content ids and pattern tuples never collide as
        dict keys, so both keying schemes share one memo.
        """
        cache = self._match_cache
        cached = cache.get(content_id)
        if cached is not None:
            return cached
        value = self._compute_matching(patterns)
        if len(cache) >= _MATCH_CACHE_LIMIT:
            cache.clear()
        cache[content_id] = value
        return value

    def matches_locally(self, patterns: Iterable[int]) -> bool:
        """True iff any of the event's patterns is locally subscribed."""
        matching = self._matching_tuple(patterns)
        return bool(matching) and matching[0] == LOCAL

    def __len__(self) -> int:
        return self._known

    def __iter__(self) -> Iterator[Tuple[int, List[int]]]:
        for pattern in self._known_patterns():
            yield pattern, self.directions(pattern)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SubscriptionTable patterns={self._known}>"
