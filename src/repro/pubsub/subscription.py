"""Per-dispatcher subscription tables.

A subscription table maps each pattern to the set of *directions* events
matching it must be forwarded to.  A direction is either a neighbor node id
(the subscription arrived from that neighbor, i.e. a subscriber lives in the
subtree behind it) or the :data:`~repro.pubsub.pattern.LOCAL` sentinel (one
of this dispatcher's own clients subscribed).

The table also remembers, per pattern, the directions a subscription has
already been forwarded to, implementing the paper's optimization:
*"avoiding subscription forwarding of the same event pattern in the same
direction"*.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.pubsub.pattern import LOCAL

__all__ = ["SubscriptionTable"]

#: Memo entries are dropped wholesale past this size -- a safety valve for
#: adversarial workloads; realistic pattern universes stay far below it.
_MATCH_CACHE_LIMIT = 1 << 16


class SubscriptionTable:
    """Routing state of one dispatcher.

    The structure is intentionally simple: ``{pattern: set(direction)}``.
    All query methods return deterministic (sorted) collections so that
    simulations are reproducible regardless of hash randomization.

    Matching memo
    -------------
    Event contents repeat heavily within a run (a handful of patterns,
    drawn over and over), while subscription tables mutate rarely (never,
    in the paper's stable-subscription regime).  The per-event routing
    queries -- :meth:`matching_directions_sorted` and
    :meth:`matches_locally` -- are therefore memoized on the event's
    pattern tuple; *any* mutation of the table invalidates the whole memo
    (see :meth:`_invalidate`).
    """

    __slots__ = ("_directions", "_forwarded", "_match_cache")

    def __init__(self) -> None:
        self._directions: Dict[int, Set[int]] = {}
        self._forwarded: Dict[int, Set[int]] = {}
        #: pattern tuple -> sorted direction tuple (LOCAL first if present,
        #: since LOCAL is -1 and node ids are >= 0).
        self._match_cache: Dict[Tuple[int, ...], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, pattern: int, direction: int) -> bool:
        """Record that ``direction`` wants events matching ``pattern``.

        Returns ``True`` if the pattern was previously unknown to this
        table (i.e. this is the first direction for it) -- the caller uses
        this to decide whether to propagate the subscription further.
        """
        self._invalidate()
        directions = self._directions.get(pattern)
        if directions is None:
            self._directions[pattern] = {direction}
            return True
        directions.add(direction)
        return False

    def remove(self, pattern: int, direction: int) -> None:
        """Forget one direction; drops the pattern entirely when empty.

        Forwarded marks are *kept*: they record what we told neighbors,
        which stays true until an explicit unsubscription is sent
        (``unmark_forwarded``) -- dropping them here would leave neighbors
        believing we still want the pattern.
        """
        directions = self._directions.get(pattern)
        if directions is None:
            return
        self._invalidate()
        directions.discard(direction)
        if not directions:
            del self._directions[pattern]

    def clear(self) -> None:
        """Drop all routing state (used when routes are rebuilt)."""
        self._invalidate()
        self._directions.clear()
        self._forwarded.clear()

    def drop_direction(self, direction: int) -> None:
        """Remove a neighbor from every pattern (neighbor disappeared)."""
        self._invalidate()
        empty = []
        for pattern, directions in self._directions.items():
            directions.discard(direction)
            if not directions:
                empty.append(pattern)
        for pattern in empty:
            del self._directions[pattern]
        for forwarded in self._forwarded.values():
            forwarded.discard(direction)

    # ------------------------------------------------------------------
    # Forwarding dedup (the paper's optimization)
    # ------------------------------------------------------------------
    def mark_forwarded(self, pattern: int, direction: int) -> bool:
        """Record that the subscription for ``pattern`` was propagated to
        ``direction``.  Returns ``False`` if it already had been (the caller
        must then *not* forward again)."""
        forwarded = self._forwarded.setdefault(pattern, set())
        if direction in forwarded:
            return False
        forwarded.add(direction)
        return True

    def unmark_forwarded(self, pattern: int, direction: int) -> None:
        """Forget that ``pattern`` was propagated to ``direction`` (after an
        unsubscription), so a future re-subscription propagates again."""
        forwarded = self._forwarded.get(pattern)
        if forwarded is not None:
            forwarded.discard(direction)

    def was_forwarded(self, pattern: int, direction: int) -> bool:
        return direction in self._forwarded.get(pattern, ())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def directions(self, pattern: int) -> List[int]:
        """Sorted directions subscribed to ``pattern`` (may include LOCAL)."""
        return sorted(self._directions.get(pattern, ()))

    def neighbor_directions(self, pattern: int) -> List[int]:
        """Sorted *neighbor* directions for ``pattern`` (LOCAL excluded)."""
        return sorted(
            d for d in self._directions.get(pattern, ()) if d != LOCAL
        )

    def has_pattern(self, pattern: int) -> bool:
        return pattern in self._directions

    def is_local(self, pattern: int) -> bool:
        """True iff this dispatcher itself subscribes to ``pattern``."""
        directions = self._directions.get(pattern)
        return directions is not None and LOCAL in directions

    def patterns(self) -> List[int]:
        """All patterns known to the table (own + forwarded), sorted.

        This is the pool the *push* algorithm draws from ("p is selected by
        considering the whole subscription table").
        """
        return sorted(self._directions)

    def local_patterns(self) -> List[int]:
        """Patterns subscribed locally, sorted.

        This is the pool the *subscriber-based pull* draws from ("chooses a
        pattern p among the ones associated to subscriptions issued
        locally").
        """
        return sorted(
            pattern
            for pattern, directions in self._directions.items()
            if LOCAL in directions
        )

    def _invalidate(self) -> None:
        """Drop the matching memo; called on every table mutation."""
        if self._match_cache:
            self._match_cache.clear()

    def _matching_tuple(self, patterns: Iterable[int]) -> Tuple[int, ...]:
        """Memoized sorted direction tuple for one event content."""
        key = patterns if type(patterns) is tuple else tuple(patterns)
        cache = self._match_cache
        cached = cache.get(key)
        if cached is not None:
            return cached
        result: Set[int] = set()
        directions_by_pattern = self._directions
        for pattern in key:
            directions = directions_by_pattern.get(pattern)
            if directions:
                result |= directions
        value = tuple(sorted(result))
        if len(cache) >= _MATCH_CACHE_LIMIT:
            cache.clear()
        cache[key] = value
        return value

    def matching_directions(self, patterns: Iterable[int]) -> Set[int]:
        """Union of directions over the given event content.

        This is the reverse-path routing decision for an event: one event
        may match several subscriptions, laid down on the same tree, so the
        forwarding set is the union (each direction receives one copy).
        """
        return set(self._matching_tuple(patterns))

    def matching_directions_sorted(self, patterns: Iterable[int]) -> Tuple[int, ...]:
        """Sorted direction tuple for one event content (memoized).

        The hot-path variant of :meth:`matching_directions`: the dispatcher
        forwards in this exact order, so handing out a pre-sorted tuple
        kills the per-forward ``sorted()``.  With LOCAL = -1 and node ids
        >= 0, LOCAL -- when present -- is always the first element.
        """
        return self._matching_tuple(patterns)

    def matches_locally(self, patterns: Iterable[int]) -> bool:
        """True iff any of the event's patterns is locally subscribed."""
        matching = self._matching_tuple(patterns)
        return bool(matching) and matching[0] == LOCAL

    def __len__(self) -> int:
        return len(self._directions)

    def __iter__(self) -> Iterator[Tuple[int, List[int]]]:
        for pattern in sorted(self._directions):
            yield pattern, self.directions(pattern)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SubscriptionTable patterns={len(self._directions)}>"
