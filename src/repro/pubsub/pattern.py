"""Patterns and the pattern space.

The paper's content model (Section IV-A): *"Events are represented as
randomly-generated sequences of numbers, where each number represents a
pattern of the system. ... An event pattern is represented as a single
number.  An event matches a subscription if it contains the number specified
by the event pattern in the subscription."*

A pattern is therefore just an ``int`` in ``[0, Π)``; :class:`PatternSpace`
captures Π (the paper sets Π = 70) and offers the random draws used by the
workload layer.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

__all__ = ["LOCAL", "PatternSpace"]

#: Sentinel "direction" used in subscription tables for local subscriptions
#: (the dispatcher's own clients).  Real neighbor directions are node ids,
#: which are always >= 0.
LOCAL = -1


class PatternSpace:
    """The universe of patterns available in the system.

    Parameters
    ----------
    size:
        Π, the total number of patterns (paper default: 70).

    >>> space = PatternSpace(70)
    >>> space.contains(0), space.contains(69), space.contains(70)
    (True, True, False)
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"pattern space size must be positive, got {size}")
        self.size = size

    def contains(self, pattern: int) -> bool:
        return 0 <= pattern < self.size

    def validate(self, pattern: int) -> None:
        if not self.contains(pattern):
            raise ValueError(
                f"pattern {pattern} outside the space [0, {self.size})"
            )

    def sample_subscription(self, count: int, rng: random.Random) -> Tuple[int, ...]:
        """Draw ``count`` distinct patterns uniformly (a dispatcher's
        subscription set, the paper's πmax draw)."""
        if count > self.size:
            raise ValueError(
                f"cannot draw {count} distinct patterns from a space of {self.size}"
            )
        return tuple(sorted(rng.sample(range(self.size), count)))

    def sample_event_patterns(
        self, rng: random.Random, max_patterns: int = 3
    ) -> Tuple[int, ...]:
        """Draw the content of one event.

        The paper assumes "an event can match at most 3 patterns"
        (footnote 5); we draw the number of patterns uniformly in
        ``[1, max_patterns]`` and the patterns themselves uniformly without
        replacement.
        """
        if max_patterns <= 0:
            raise ValueError("events must contain at least one pattern")
        count = rng.randint(1, min(max_patterns, self.size))
        return tuple(sorted(rng.sample(range(self.size), count)))

    @staticmethod
    def matches(event_patterns: Sequence[int], pattern: int) -> bool:
        """Content-based match: the event contains the subscribed number."""
        return pattern in event_patterns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PatternSpace Π={self.size}>"
