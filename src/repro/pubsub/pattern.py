"""Patterns and the pattern space.

The paper's content model (Section IV-A): *"Events are represented as
randomly-generated sequences of numbers, where each number represents a
pattern of the system. ... An event pattern is represented as a single
number.  An event matches a subscription if it contains the number specified
by the event pattern in the subscription."*

A pattern is therefore just an ``int`` in ``[0, Π)``; :class:`PatternSpace`
captures Π (the paper sets Π = 70) and offers the random draws used by the
workload layer.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

__all__ = ["LOCAL", "PatternSpace"]

#: Sentinel "direction" used in subscription tables for local subscriptions
#: (the dispatcher's own clients).  Real neighbor directions are node ids,
#: which are always >= 0.
LOCAL = -1


class PatternSpace:
    """The universe of patterns available in the system.

    Parameters
    ----------
    size:
        Π, the total number of patterns (paper default: 70).

    >>> space = PatternSpace(70)
    >>> space.contains(0), space.contains(69), space.contains(70)
    (True, True, False)
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"pattern space size must be positive, got {size}")
        self.size = size
        # Content interner: event contents (sorted pattern tuples) are mapped
        # to small integers in first-occurrence order, so the hot matching
        # paths can memoize on one machine int instead of hashing a tuple,
        # and every event carrying the same content shares one tuple object.
        # First-occurrence order makes the assignment deterministic for a
        # fixed workload stream.
        self._content_ids: Dict[Tuple[int, ...], int] = {}
        self._contents: List[Tuple[int, ...]] = []

    def intern_content(
        self, patterns: Tuple[int, ...]
    ) -> Tuple[Tuple[int, ...], int]:
        """Return ``(canonical_tuple, content_id)`` for one event content.

        ``patterns`` must already be sorted (the workload draws produce
        sorted tuples).  The canonical tuple is shared across all events
        with the same content.
        """
        content_id = self._content_ids.get(patterns)
        if content_id is None:
            content_id = len(self._contents)
            self._content_ids[patterns] = content_id
            self._contents.append(patterns)
            return patterns, content_id
        return self._contents[content_id], content_id

    def content(self, content_id: int) -> Tuple[int, ...]:
        """The canonical pattern tuple for an interned content id."""
        return self._contents[content_id]

    def contains(self, pattern: int) -> bool:
        return 0 <= pattern < self.size

    def validate(self, pattern: int) -> None:
        if not self.contains(pattern):
            raise ValueError(
                f"pattern {pattern} outside the space [0, {self.size})"
            )

    def sample_subscription(self, count: int, rng: random.Random) -> Tuple[int, ...]:
        """Draw ``count`` distinct patterns uniformly (a dispatcher's
        subscription set, the paper's πmax draw)."""
        if count > self.size:
            raise ValueError(
                f"cannot draw {count} distinct patterns from a space of {self.size}"
            )
        return tuple(sorted(rng.sample(range(self.size), count)))

    def sample_event_patterns(
        self, rng: random.Random, max_patterns: int = 3
    ) -> Tuple[int, ...]:
        """Draw the content of one event.

        The paper assumes "an event can match at most 3 patterns"
        (footnote 5); we draw the number of patterns uniformly in
        ``[1, max_patterns]`` and the patterns themselves uniformly without
        replacement.
        """
        if max_patterns <= 0:
            raise ValueError("events must contain at least one pattern")
        count = rng.randint(1, min(max_patterns, self.size))
        return tuple(sorted(rng.sample(range(self.size), count)))

    @staticmethod
    def matches(event_patterns: Sequence[int], pattern: int) -> bool:
        """Content-based match: the event contains the subscribed number."""
        return pattern in event_patterns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PatternSpace Π={self.size}>"
