"""The event buffer (the paper's β).

Section IV-A: *"Each dispatcher is equipped with a buffer where events are
stored, to satisfy retransmission requests.  The buffer has a size of β
elements.  In our simulations we adopted a simple FIFO buffering strategy
where each dispatcher caches only events for which it is either the
publisher or a subscriber."*

:class:`EventCache` is that buffer, with two lookup indexes:

* by :class:`~repro.pubsub.event.EventId` -- used by the push algorithm
  (positive digests carry event ids);
* by ``(source, pattern, pattern_seq)`` -- used by the pull algorithms
  (negative digests carry loss-detection triples).

Eviction policies
-----------------
The paper uses plain FIFO but explicitly flags buffer management as an
optimization frontier ("we are currently investigating if and how some of
the published results [13] that enable a significant buffer optimization
are applicable in our context").  Besides the default ``"fifo"`` the cache
therefore supports:

* ``"lru"`` -- a lookup hit refreshes the entry's position, so events
  still being requested survive longer;
* ``"random"`` -- evict a uniformly random entry, the classic
  age-unbiased strategy from the bimodal-multicast literature.

``benchmarks/test_ablation_cache_policy.py`` compares the three.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.pubsub.event import Event, EventId

__all__ = ["EventCache", "CACHE_POLICIES"]

LossKey = Tuple[int, int, int]  # (source, pattern, pattern_seq)

#: Supported eviction policies.
CACHE_POLICIES = ("fifo", "lru", "random")


class EventCache:
    """FIFO cache of β events with id- and loss-key indexes.

    >>> cache = EventCache(capacity=2)
    >>> from repro.pubsub.event import Event, EventId
    >>> e1 = Event(EventId(0, 1), (5,), {5: 1}, 0.0)
    >>> e2 = Event(EventId(0, 2), (5,), {5: 2}, 0.0)
    >>> e3 = Event(EventId(0, 3), (5,), {5: 3}, 0.0)
    >>> cache.insert(e1); cache.insert(e2); cache.insert(e3)
    True
    True
    True
    >>> cache.get(e1.event_id) is None  # evicted FIFO
    True
    >>> cache.get(e3.event_id) is e3
    True
    """

    __slots__ = ("capacity", "policy", "_is_random", "_is_lru", "_rng",
                 "_id_list", "_id_pos", "_events", "_by_loss_key",
                 "_by_pattern", "_loss_index_active", "_pattern_index_active",
                 "insertions", "evictions", "hits", "misses")

    def __init__(
        self,
        capacity: int,
        policy: str = "fifo",
        rng: Optional[random.Random] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; choose from {CACHE_POLICIES}"
            )
        if policy == "random" and rng is None:
            raise ValueError("the 'random' policy needs an rng")
        self.capacity = capacity
        self.policy = policy
        # Policy flags hoisted out of the per-event hot path.
        self._is_random = policy == "random"
        self._is_lru = policy == "lru"
        self._rng = rng
        # O(1) uniform victim selection for the random policy.
        self._id_list: List[EventId] = []
        self._id_pos: Dict[EventId, int] = {}
        # Plain dicts keep insertion order (guaranteed since 3.7) and beat
        # OrderedDict on every hot operation; FIFO eviction pops
        # ``next(iter(...))`` and LRU refreshes via pop + reinsert.
        self._events: Dict[EventId, Event] = {}
        # Secondary indexes are built lazily: the loss-key index serves the
        # pull algorithms, the per-pattern index serves push digests, and no
        # run needs both.  Until first use an index is skipped entirely in
        # insert/evict; activation rebuilds it from ``_events`` (whose
        # insertion order it inherits) and maintains it from then on.
        self._by_loss_key: Dict[LossKey, EventId] = {}
        self._by_pattern: Dict[int, Dict[EventId, Event]] = {}
        self._loss_index_active = False
        self._pattern_index_active = False
        self.insertions = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def insert(self, event: Event) -> bool:
        """Add an event, evicting the oldest entry if at capacity.

        Re-inserting an already cached event is a no-op that does *not*
        refresh its FIFO position (the paper's strategy is plain FIFO, not
        LRU).  Returns ``True`` if the event is cached after the call.
        """
        capacity = self.capacity
        if capacity == 0:
            return False
        events = self._events
        event_id = event.event_id
        if event_id in events:
            return True
        if len(events) >= capacity:
            self._evict_one()
        events[event_id] = event
        if self._is_random:
            self._id_pos[event_id] = len(self._id_list)
            self._id_list.append(event_id)
        if self._loss_index_active:
            by_loss_key = self._by_loss_key
            source = event_id.source
            for pattern, seq in event.pattern_seqs.items():
                by_loss_key[(source, pattern, seq)] = event_id
        if self._pattern_index_active:
            by_pattern = self._by_pattern
            for pattern in event.pattern_seqs:
                bucket = by_pattern.get(pattern)
                if bucket is None:
                    bucket = {}
                    by_pattern[pattern] = bucket
                bucket[event_id] = event
        self.insertions += 1
        return True

    def _evict_one(self) -> None:
        if self._is_random:
            victim_index = self._rng.randrange(len(self._id_list))
            event_id = self._id_list[victim_index]
            last_id = self._id_list[-1]
            self._id_list[victim_index] = last_id
            self._id_pos[last_id] = victim_index
            self._id_list.pop()
            del self._id_pos[event_id]
            event = self._events.pop(event_id)
        else:
            # fifo and lru both evict the head; lru differs by refreshing
            # positions on hits (see get/get_by_loss_key).
            events = self._events
            event_id = next(iter(events))
            event = events.pop(event_id)
        if self._loss_index_active:
            by_loss_key = self._by_loss_key
            source = event_id.source
            for pattern, seq in event.pattern_seqs.items():
                by_loss_key.pop((source, pattern, seq), None)
        if self._pattern_index_active:
            by_pattern = self._by_pattern
            for pattern in event.pattern_seqs:
                bucket = by_pattern.get(pattern)
                if bucket is not None:
                    bucket.pop(event_id, None)
                    if not bucket:
                        del by_pattern[pattern]
        self.evictions += 1

    # ------------------------------------------------------------------
    # Lazy index activation
    # ------------------------------------------------------------------
    def _activate_loss_index(self) -> None:
        by_loss_key = self._by_loss_key
        for event_id, event in self._events.items():
            source = event_id.source
            for pattern, seq in event.pattern_seqs.items():
                by_loss_key[(source, pattern, seq)] = event_id
        self._loss_index_active = True

    def _activate_pattern_index(self) -> None:
        by_pattern = self._by_pattern
        for event_id, event in self._events.items():
            for pattern in event.pattern_seqs:
                bucket = by_pattern.get(pattern)
                if bucket is None:
                    bucket = {}
                    by_pattern[pattern] = bucket
                bucket[event_id] = event
        self._pattern_index_active = True

    # ------------------------------------------------------------------
    def get(self, event_id: EventId) -> Optional[Event]:
        """Lookup by event id (push-style positive digest entries)."""
        events = self._events
        event = events.get(event_id)
        if event is None:
            self.misses += 1
        else:
            self.hits += 1
            if self._is_lru:
                # Pop + reinsert moves the entry to the back of the order.
                del events[event_id]
                events[event_id] = event
        return event

    def get_by_loss_key(
        self, source: int, pattern: int, pattern_seq: int
    ) -> Optional[Event]:
        """Lookup by loss-detection triple (pull-style digest entries)."""
        if not self._loss_index_active:
            self._activate_loss_index()
        event_id = self._by_loss_key.get((source, pattern, pattern_seq))
        if event_id is None:
            self.misses += 1
            return None
        self.hits += 1
        events = self._events
        event = events[event_id]
        if self._is_lru:
            del events[event_id]
            events[event_id] = event
        return event

    def contains(self, event_id: EventId) -> bool:
        return event_id in self._events

    def matching(self, pattern: int) -> List[Event]:
        """All cached events matching ``pattern``, oldest first.

        Used by the push algorithm to build its positive digest.
        """
        if not self._pattern_index_active:
            self._activate_pattern_index()
        bucket = self._by_pattern.get(pattern)
        return list(bucket.values()) if bucket else []

    def matching_ids(self, pattern: int) -> List[EventId]:
        """Ids of cached events matching ``pattern``, oldest first."""
        if not self._pattern_index_active:
            self._activate_pattern_index()
        bucket = self._by_pattern.get(pattern)
        return list(bucket) if bucket else []

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached event and all index state.

        Crash-recovery semantics: the buffer is volatile memory, so a
        restarted dispatcher comes back with an empty cache.  Lazy-index
        activation flags are reset too -- the next lookup rebuilds from the
        (empty) store.  Cumulative statistics survive; the wipe is not an
        eviction.
        """
        self._events.clear()
        self._id_list.clear()
        self._id_pos.clear()
        self._by_loss_key.clear()
        self._by_pattern.clear()
        self._loss_index_active = False
        self._pattern_index_active = False

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events.values())

    def oldest(self) -> Optional[Event]:
        if not self._events:
            return None
        return next(iter(self._events.values()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<EventCache {len(self._events)}/{self.capacity} "
            f"evictions={self.evictions}>"
        )
