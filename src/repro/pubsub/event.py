"""Events and event identifiers.

The identification scheme is the one Section III-B requires for pull-based
loss detection: *"The event identifier in this scheme contains the event
source, information about all the patterns matched by the event and, for
each pattern, a sequence number incremented at the source each time an event
is published for that pattern."*

Concretely an :class:`Event` carries:

* :class:`EventId` ``(source, seq)`` -- globally unique (footnote 3: source
  id plus a per-source monotonically increasing counter);
* ``patterns`` -- the content: the tuple of pattern numbers it contains;
* ``pattern_seqs`` -- for every contained pattern ``p``, the per-(source, p)
  sequence number assigned at publish time.

Events are immutable once published; the mutable *route* accumulated for
publisher-based pull travels in the event *message*, not in the event
(a single event object is shared by every copy in flight).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["EventId", "Event", "EventIdRegistry", "ReceivedLog"]


class EventId:
    """Globally unique event identity: (source dispatcher, per-source seq)."""

    __slots__ = ("source", "seq", "_hash")

    def __init__(self, source: int, seq: int) -> None:
        self.source = source
        self.seq = seq
        # Ids are hashed millions of times per run (duplicate suppression,
        # cache indexes); precompute once.  hash() of an int tuple is
        # deterministic across processes (no string hash randomization).
        self._hash = hash((source, seq))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EventId)
            and self.source == other.source
            and self.seq == other.seq
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "EventId") -> bool:
        return (self.source, self.seq) < (other.source, other.seq)

    def as_tuple(self) -> Tuple[int, int]:
        return (self.source, self.seq)

    def __repr__(self) -> str:
        return f"EventId({self.source}, {self.seq})"


class Event:
    """A published event.

    Attributes
    ----------
    event_id:
        The :class:`EventId`.
    patterns:
        Sorted tuple of pattern numbers the event contains (its content).
    pattern_seqs:
        ``{pattern: sequence number}`` assigned at the source, one entry per
        contained pattern -- the loss-detection tags of Section III-B.
    publish_time:
        Simulation time of the publish operation (used by metrics and for
        cache-persistence analysis).
    content_id:
        Interned content identity assigned by
        :meth:`repro.pubsub.pattern.PatternSpace.intern_content` at publish
        time, or ``-1`` for events constructed outside a pattern space
        (tests, ad-hoc tooling).  When present, matching paths memoize on
        this int instead of the pattern tuple.
    """

    __slots__ = ("event_id", "patterns", "pattern_seqs", "publish_time",
                 "content_id")

    def __init__(
        self,
        event_id: EventId,
        patterns: Tuple[int, ...],
        pattern_seqs: Dict[int, int],
        publish_time: float,
        content_id: int = -1,
    ) -> None:
        if not patterns:
            raise ValueError("an event must contain at least one pattern")
        if set(pattern_seqs) != set(patterns):
            raise ValueError(
                "pattern_seqs must tag exactly the contained patterns: "
                f"{sorted(pattern_seqs)} vs {sorted(patterns)}"
            )
        self.event_id = event_id
        self.patterns = patterns
        self.pattern_seqs = pattern_seqs
        self.publish_time = publish_time
        self.content_id = content_id

    @property
    def source(self) -> int:
        return self.event_id.source

    def matches(self, pattern: int) -> bool:
        """Content-based match against a single subscription pattern."""
        return pattern in self.patterns

    def matches_any(self, patterns) -> bool:
        """True if the event matches at least one of ``patterns``."""
        for pattern in self.patterns:
            if pattern in patterns:
                return True
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Event) and self.event_id == other.event_id

    def __hash__(self) -> int:
        return self.event_id._hash

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Event {self.event_id!r} patterns={self.patterns} "
            f"t={self.publish_time:.4f}>"
        )


class EventIdRegistry:
    """Run-global dense index over :class:`EventId`\\ s.

    One registry per simulation (owned by :class:`~repro.pubsub.system.
    PubSubSystem`), interning each event identity to the next integer the
    first time any node logs it.  The dense index is what lets the
    per-node :class:`ReceivedLog`\\ s store membership as bitmaps instead
    of hash sets: at 10^5 nodes the received-id sets were the single
    largest per-node structure (~2.5 KB/node for a few hundred events),
    where a shared registry plus per-node bitmaps cost one dict for the
    whole process and ~events/8 bytes per node.
    """

    __slots__ = ("_index", "_ids")

    def __init__(self) -> None:
        self._index: Dict[EventId, int] = {}
        self._ids: List[EventId] = []

    def intern(self, event_id: EventId) -> int:
        """Dense index of ``event_id``, assigning one on first sight."""
        idx = self._index.get(event_id)
        if idx is None:
            idx = len(self._ids)
            self._index[event_id] = idx
            self._ids.append(event_id)
        return idx

    def index_of(self, event_id: EventId) -> Optional[int]:
        """Dense index of ``event_id``, or ``None`` if never interned."""
        return self._index.get(event_id)

    def event_id(self, index: int) -> EventId:
        return self._ids[index]

    def __len__(self) -> int:
        return len(self._ids)


class ReceivedLog:
    """Set-like per-node log of every event id ever received.

    Drop-in replacement for the ``Set[EventId]`` the dispatchers used for
    duplicate suppression and push-digest checks: supports ``in``,
    ``add``, ``discard``, iteration and ``len``, but stores membership as
    a bitmap over the shared :class:`EventIdRegistry`'s dense index.
    Iteration yields ids in dense-index (global first-receipt) order --
    deterministic, unlike a hash set, and nothing in the simulation
    iterates a received log anyway (membership and insertion only).
    """

    __slots__ = ("_registry", "_bits")

    def __init__(self, registry: Optional[EventIdRegistry] = None) -> None:
        # Standalone construction (unit tests, ad-hoc tooling) gets a
        # private registry; simulations share one per pub-sub system.
        self._registry = registry if registry is not None else EventIdRegistry()
        self._bits = bytearray()

    def add(self, event_id: EventId) -> None:
        idx = self._registry.intern(event_id)
        byte = idx >> 3
        bits = self._bits
        if byte >= len(bits):
            bits.extend(bytes(byte + 1 - len(bits)))
        bits[byte] |= 1 << (idx & 7)

    def discard(self, event_id: EventId) -> None:
        idx = self._registry.index_of(event_id)
        if idx is None:
            return
        byte = idx >> 3
        if byte < len(self._bits):
            self._bits[byte] &= 0xFF ^ (1 << (idx & 7))

    def __contains__(self, event_id: object) -> bool:
        if not isinstance(event_id, EventId):
            return False
        idx = self._registry.index_of(event_id)
        if idx is None:
            return False
        byte = idx >> 3
        bits = self._bits
        return byte < len(bits) and bits[byte] >> (idx & 7) & 1 == 1

    def __iter__(self) -> Iterator[EventId]:
        ids = self._registry._ids
        for byte, value in enumerate(self._bits):
            if not value:
                continue
            base = byte << 3
            for bit in range(8):
                if value >> bit & 1:
                    yield ids[base + bit]

    def __len__(self) -> int:
        return sum(value.bit_count() for value in self._bits)

    def __bool__(self) -> bool:
        return any(self._bits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ReceivedLog {len(self)} ids>"
