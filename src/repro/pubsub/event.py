"""Events and event identifiers.

The identification scheme is the one Section III-B requires for pull-based
loss detection: *"The event identifier in this scheme contains the event
source, information about all the patterns matched by the event and, for
each pattern, a sequence number incremented at the source each time an event
is published for that pattern."*

Concretely an :class:`Event` carries:

* :class:`EventId` ``(source, seq)`` -- globally unique (footnote 3: source
  id plus a per-source monotonically increasing counter);
* ``patterns`` -- the content: the tuple of pattern numbers it contains;
* ``pattern_seqs`` -- for every contained pattern ``p``, the per-(source, p)
  sequence number assigned at publish time.

Events are immutable once published; the mutable *route* accumulated for
publisher-based pull travels in the event *message*, not in the event
(a single event object is shared by every copy in flight).
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["EventId", "Event"]


class EventId:
    """Globally unique event identity: (source dispatcher, per-source seq)."""

    __slots__ = ("source", "seq", "_hash")

    def __init__(self, source: int, seq: int) -> None:
        self.source = source
        self.seq = seq
        # Ids are hashed millions of times per run (duplicate suppression,
        # cache indexes); precompute once.  hash() of an int tuple is
        # deterministic across processes (no string hash randomization).
        self._hash = hash((source, seq))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EventId)
            and self.source == other.source
            and self.seq == other.seq
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "EventId") -> bool:
        return (self.source, self.seq) < (other.source, other.seq)

    def as_tuple(self) -> Tuple[int, int]:
        return (self.source, self.seq)

    def __repr__(self) -> str:
        return f"EventId({self.source}, {self.seq})"


class Event:
    """A published event.

    Attributes
    ----------
    event_id:
        The :class:`EventId`.
    patterns:
        Sorted tuple of pattern numbers the event contains (its content).
    pattern_seqs:
        ``{pattern: sequence number}`` assigned at the source, one entry per
        contained pattern -- the loss-detection tags of Section III-B.
    publish_time:
        Simulation time of the publish operation (used by metrics and for
        cache-persistence analysis).
    """

    __slots__ = ("event_id", "patterns", "pattern_seqs", "publish_time")

    def __init__(
        self,
        event_id: EventId,
        patterns: Tuple[int, ...],
        pattern_seqs: Dict[int, int],
        publish_time: float,
    ) -> None:
        if not patterns:
            raise ValueError("an event must contain at least one pattern")
        if set(pattern_seqs) != set(patterns):
            raise ValueError(
                "pattern_seqs must tag exactly the contained patterns: "
                f"{sorted(pattern_seqs)} vs {sorted(patterns)}"
            )
        self.event_id = event_id
        self.patterns = patterns
        self.pattern_seqs = pattern_seqs
        self.publish_time = publish_time

    @property
    def source(self) -> int:
        return self.event_id.source

    def matches(self, pattern: int) -> bool:
        """Content-based match against a single subscription pattern."""
        return pattern in self.patterns

    def matches_any(self, patterns) -> bool:
        """True if the event matches at least one of ``patterns``."""
        for pattern in self.patterns:
            if pattern in patterns:
                return True
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Event) and self.event_id == other.event_id

    def __hash__(self) -> int:
        return self.event_id._hash

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Event {self.event_id!r} patterns={self.patterns} "
            f"t={self.publish_time:.4f}>"
        )
