"""Content-based publish-subscribe with subscription forwarding.

This subpackage implements the best-effort dispatching substrate of
Section II of the paper:

* events are sequences of numbers, each number being a pattern id; an event
  matches a subscription iff it contains the subscribed pattern
  (:mod:`~repro.pubsub.pattern`, :mod:`~repro.pubsub.event`);
* dispatchers are connected in a single unrooted tree and run *subscription
  forwarding*: subscriptions flood the tree (with per-direction
  deduplication) and lay down reverse-path routes for events
  (:mod:`~repro.pubsub.subscription`, :mod:`~repro.pubsub.dispatcher`);
* each dispatcher caches events for which it is publisher or subscriber in
  a FIFO buffer of β elements (:mod:`~repro.pubsub.cache`);
* :class:`~repro.pubsub.system.PubSubSystem` wires dispatchers, network and
  tree together and exposes the user-facing API (subscribe / publish).

Reliability is *not* provided here -- that is the job of
:mod:`repro.recovery`, which plugs into the dispatcher via the
``RecoveryAlgorithm`` interface.
"""

from repro.pubsub.pattern import PatternSpace, LOCAL
from repro.pubsub.event import Event, EventId
from repro.pubsub.subscription import SubscriptionTable
from repro.pubsub.cache import EventCache
from repro.pubsub.dispatcher import Dispatcher
from repro.pubsub.system import PubSubSystem

__all__ = [
    "PatternSpace",
    "LOCAL",
    "Event",
    "EventId",
    "SubscriptionTable",
    "EventCache",
    "Dispatcher",
    "PubSubSystem",
]
