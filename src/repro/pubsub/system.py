"""System assembly: tree + network + dispatchers + ground truth.

:class:`PubSubSystem` owns the whole dispatching network and provides:

* construction from a :class:`~repro.topology.tree.Tree`;
* the user-facing subscribe / publish API;
* the *route oracle*: direct computation of every subscription table from
  the global subscription assignment and the current live overlay.  The
  oracle produces exactly the tables the subscription-forwarding protocol
  converges to (the test suite verifies this equivalence) and is what the
  reconfiguration engine invokes when a repair completes -- modelling the
  completion of the route-reconstruction protocol of [7];
* ground-truth queries used by metrics ("which dispatchers *should* receive
  this event in a fully reliable system?").
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.network.network import Network
from repro.pubsub.dispatcher import DeliveryCallback, Dispatcher
from repro.pubsub.event import Event, EventIdRegistry
from repro.pubsub.pattern import LOCAL, PatternSpace
from repro.sim.engine import Simulator
from repro.topology.tree import Tree

__all__ = ["PubSubSystem"]


class PubSubSystem:
    """The dispatching network as a single object.

    Parameters
    ----------
    sim, network:
        Engine and (empty) network; the constructor populates nodes/links.
    tree:
        Initial overlay tree.
    pattern_space:
        The universe of Π patterns.
    buffer_size:
        β, each dispatcher's event-cache capacity.
    record_routes:
        Enable route accumulation on event messages (publisher-based pull).
    on_deliver:
        Delivery callback propagated to every dispatcher.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tree: Tree,
        pattern_space: PatternSpace,
        buffer_size: int,
        record_routes: bool = False,
        on_deliver: Optional[DeliveryCallback] = None,
        cache_policy: str = "fifo",
        cache_rng_factory=None,
        cache_layout: str = "classic",
    ) -> None:
        self.sim = sim
        self.network = network
        self.pattern_space = pattern_space
        self.dispatchers: List[Dispatcher] = []
        #: One dense event-id index shared by every node's received log --
        #: only materialized for the compact layout, where the per-node
        #: logs become bitmaps over it.  Classic-layout nodes keep plain
        #: hash sets (C-speed membership on the per-receipt hot path).
        self.event_registry = (
            EventIdRegistry() if cache_layout == "compact" else None
        )
        for node_id in range(tree.node_count):
            dispatcher = Dispatcher(
                node_id,
                sim,
                network,
                pattern_space,
                buffer_size,
                record_routes=record_routes,
                on_deliver=on_deliver,
                cache_policy=cache_policy,
                cache_rng=cache_rng_factory(node_id) if cache_rng_factory else None,
                cache_layout=cache_layout,
                event_registry=self.event_registry,
            )
            network.add_node(dispatcher)
            self.dispatchers.append(dispatcher)
        for a, b in tree.edges:
            network.add_link(a, b)
        #: ground-truth subscription assignment: node -> set of patterns.
        self._subscriptions: Dict[int, Set[int]] = {
            node_id: set() for node_id in range(tree.node_count)
        }
        #: per-pattern subscriber sets (derived, kept in sync).
        self._subscribers: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.dispatchers)

    def dispatcher(self, node_id: int) -> Dispatcher:
        return self.dispatchers[node_id]

    def set_delivery_callback(self, on_deliver: DeliveryCallback) -> None:
        for dispatcher in self.dispatchers:
            dispatcher.on_deliver = on_deliver

    # ------------------------------------------------------------------
    # Subscribing
    # ------------------------------------------------------------------
    def subscribe(self, node_id: int, pattern: int, via_protocol: bool = True) -> None:
        """Subscribe ``node_id`` to ``pattern``.

        With ``via_protocol`` the subscription propagates with real
        messages; otherwise only the ground truth is updated and the caller
        must invoke :meth:`rebuild_routes` (the oracle) afterwards --
        scenario builders use the oracle to start runs from the
        stable-subscription state the paper evaluates.
        """
        self.pattern_space.validate(pattern)
        self._subscriptions[node_id].add(pattern)
        self._subscribers.setdefault(pattern, set()).add(node_id)
        if via_protocol:
            self.dispatchers[node_id].subscribe(pattern)

    def unsubscribe(self, node_id: int, pattern: int, via_protocol: bool = True) -> None:
        self._subscriptions[node_id].discard(pattern)
        subscribers = self._subscribers.get(pattern)
        if subscribers is not None:
            subscribers.discard(node_id)
            if not subscribers:
                del self._subscribers[pattern]
        if via_protocol:
            self.dispatchers[node_id].unsubscribe(pattern)

    def apply_subscriptions(self, assignment: Mapping[int, Iterable[int]]) -> None:
        """Install a whole subscription assignment via the oracle."""
        for node_id, patterns in assignment.items():
            for pattern in patterns:
                self.subscribe(node_id, pattern, via_protocol=False)
        self.rebuild_routes()

    def subscriptions_of(self, node_id: int) -> FrozenSet[int]:
        return frozenset(self._subscriptions[node_id])

    def subscribers_of(self, pattern: int) -> FrozenSet[int]:
        return frozenset(self._subscribers.get(pattern, frozenset()))

    def subscribed_patterns(self) -> List[int]:
        """Patterns with at least one subscriber, sorted."""
        return sorted(self._subscribers)

    # ------------------------------------------------------------------
    # Ground truth for metrics
    # ------------------------------------------------------------------
    def expected_recipients(self, event: Event) -> Set[int]:
        """Dispatchers that receive ``event`` in a fully reliable system:
        every subscriber of any pattern the event contains (including the
        publisher itself when it subscribes -- local delivery is lossless).
        """
        recipients: Set[int] = set()
        for pattern in event.patterns:
            subscribers = self._subscribers.get(pattern)
            if subscribers:
                recipients |= subscribers
        return recipients

    # ------------------------------------------------------------------
    # The route oracle
    # ------------------------------------------------------------------
    def rebuild_routes(self) -> None:
        """Recompute every subscription table from ground truth.

        For each pattern ``p`` and live component of the overlay, a node
        ``x`` forwards ``p``-matching events toward neighbor ``n`` iff the
        component side reached through ``n`` contains a subscriber of
        ``p``.  Computed with one two-pass traversal per pattern:
        post-order ("does the subtree below this edge hold a subscriber?")
        then pre-order (push the complement down).  O(Π_active · N).

        Forwarded marks are reset to the protocol-equivalent state so that
        later protocol-based (un)subscriptions compose correctly.
        """
        adjacency: Dict[int, List[int]] = {
            node_id: self.network.neighbors(node_id)
            for node_id in range(self.node_count)
        }
        for dispatcher in self.dispatchers:
            dispatcher.table.clear()
        for node_id, patterns in self._subscriptions.items():
            table = self.dispatchers[node_id].table
            for pattern in patterns:
                table.add(pattern, LOCAL)
        # The component traversal (BFS order, parent map, children lists)
        # depends only on the overlay, not on the pattern -- hoist it out
        # of the per-pattern loop.  Previously each of the Π_active
        # patterns re-ran its own BFS: Π·N node visits per rebuild, which
        # dominates setup at 10⁵ nodes.
        components = []
        visited: Set[int] = set()
        for start in range(self.node_count):
            if start in visited:
                continue
            order, parents = self._traversal_order(adjacency, start)
            visited.update(order)
            children: Dict[int, List[int]] = {node: [] for node in order}
            for node in order:
                parent = parents[node]
                if parent is not None:
                    children[parent].append(node)
            components.append((order, parents, children, set(order)))
        for pattern, subscribers in self._subscribers.items():
            if subscribers:
                self._lay_routes_for_pattern(pattern, subscribers, components)
        # Protocol-equivalent forwarded marks: x has forwarded p toward m
        # iff x's side of the x--m edge contains a subscriber, which is
        # exactly when m's table points at x for p.
        for dispatcher in self.dispatchers:
            for pattern, directions in dispatcher.table:
                for direction in directions:
                    if direction == LOCAL:
                        continue
                    self.dispatchers[direction].table.mark_forwarded(
                        pattern, dispatcher.node_id
                    )

    def _lay_routes_for_pattern(
        self,
        pattern: int,
        subscribers: Set[int],
        components: List[Tuple[List[int], Dict[int, Optional[int]],
                               Dict[int, List[int]], Set[int]]],
    ) -> None:
        dispatchers = self.dispatchers
        for component_order, parents, children, members in components:
            if not subscribers & members:
                continue
            # Post-order pass: does the subtree rooted at x (w.r.t. this
            # traversal) contain a subscriber?
            has_sub_below: Dict[int, bool] = {}
            for node in reversed(component_order):
                below = node in subscribers
                if not below:
                    for child in children[node]:
                        if has_sub_below[child]:
                            below = True
                            break
                has_sub_below[node] = below
            # Pre-order pass: does the rest of the component (through the
            # parent edge) contain a subscriber?
            has_sub_above: Dict[int, bool] = {component_order[0]: False}
            for node in component_order:
                node_children = children[node]
                sub_here = node in subscribers
                above = has_sub_above[node]
                children_with_sub = sum(
                    1 for child in node_children if has_sub_below[child]
                )
                for child in node_children:
                    others = children_with_sub - (1 if has_sub_below[child] else 0)
                    has_sub_above[child] = above or sub_here or others > 0
            # Install directions.
            for node in component_order:
                table = dispatchers[node].table
                parent = parents[node]
                if parent is not None and has_sub_above[node]:
                    table.add(pattern, parent)
                for child in children[node]:
                    if has_sub_below[child]:
                        table.add(pattern, child)

    def repair_routes_via_protocol(self) -> None:
        """Rebuild routes with *real* subscription messages.

        The message-level alternative to the :meth:`rebuild_routes`
        oracle: every table (and its forwarded marks) is flushed, then
        each dispatcher re-issues its local subscriptions through the
        normal subscription-forwarding protocol.  Routes come back only
        as the SUBSCRIBE messages propagate hop by hop -- so events
        published during the transient can be lost even after the link is
        physically repaired, which is precisely the realism the oracle
        trades away.

        Intended for reliable-link scenarios (the paper's Figure 3(b)
        setting); on lossy links subscription messages themselves can be
        lost, leaving routes permanently broken -- a deliberate
        difference, flagged in DESIGN.md.
        """
        for dispatcher in self.dispatchers:
            dispatcher.table.clear()
        for node_id in sorted(self._subscriptions):
            dispatcher = self.dispatchers[node_id]
            for pattern in sorted(self._subscriptions[node_id]):
                dispatcher.subscribe(pattern)

    @staticmethod
    def _traversal_order(
        adjacency: Mapping[int, List[int]], start: int
    ) -> Tuple[List[int], Dict[int, Optional[int]]]:
        """BFS order and parent map of the component containing ``start``."""
        order = [start]
        parents: Dict[int, Optional[int]] = {start: None}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in adjacency[node]:
                if neighbor not in parents:
                    parents[neighbor] = node
                    order.append(neighbor)
                    queue.append(neighbor)
        return order, parents

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, node_id: int, patterns: Tuple[int, ...]) -> Event:
        """Publish an event with content ``patterns`` from ``node_id``."""
        return self.dispatchers[node_id].publish(patterns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PubSubSystem n={self.node_count} "
            f"patterns={len(self._subscribers)} links={self.network.link_count}>"
        )
