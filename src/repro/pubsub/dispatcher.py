"""The dispatcher: one node of the dispatching network.

A dispatcher implements the best-effort behaviour of Section II:

* it accepts *local* subscriptions (its clients') and propagates them along
  the tree with per-direction deduplication;
* it publishes events on behalf of its clients, tagging them at the source
  with per-(source, pattern) sequence numbers (Section III-B's
  loss-detection scheme) and routing them on the reverse paths laid down by
  subscriptions;
* it caches events for which it is publisher or subscriber in the FIFO
  buffer;
* it hands gossip traffic and loss-detection opportunities to the attached
  :class:`RecoveryAlgorithm` (see :mod:`repro.recovery`), and offers the
  primitives recovery needs: pattern-steered gossip forwarding, out-of-band
  unicast, and cache lookups.

Clients are not modelled explicitly (the paper folds them into their
dispatcher, and so do we).
"""

from __future__ import annotations

from typing import (
    Any, Callable, Dict, Iterable, Optional, Protocol, Set, Tuple, Union,
)

from repro.network.message import Message, MessageKind
from repro.network.network import Network
from repro.pubsub.cache import EventCache
from repro.pubsub.compact import CompactEventCache
from repro.pubsub.event import Event, EventId, EventIdRegistry, ReceivedLog
from repro.pubsub.pattern import LOCAL, PatternSpace
from repro.pubsub.subscription import SubscriptionTable
from repro.sim.engine import Simulator

__all__ = ["Dispatcher", "RecoveryHooks", "SUBSCRIBE", "UNSUBSCRIBE"]

#: Subscription message operations.
SUBSCRIBE = 1
UNSUBSCRIBE = 2

# Hot-path aliases: the receive dispatch runs once per delivered message
# (hundreds of thousands of times per run); a module global is one dict
# lookup where ``MessageKind.EVENT`` is two.  IntEnum members are
# singletons, so identity comparison is exact.
_EVENT = MessageKind.EVENT
_GOSSIP = MessageKind.GOSSIP
_SUBSCRIPTION = MessageKind.SUBSCRIPTION
_OOB_REQUEST = MessageKind.OOB_REQUEST
_OOB_EVENT = MessageKind.OOB_EVENT

#: Route annotation attached to event messages: tuple of dispatcher ids the
#: message traversed so far (publisher first).  ``None`` when route
#: recording is disabled.
Route = Optional[Tuple[int, ...]]

DeliveryCallback = Callable[[int, Event, bool], None]


class RecoveryHooks(Protocol):
    """What a recovery algorithm exposes to its dispatcher.

    Implemented by :class:`repro.recovery.base.RecoveryAlgorithm`; declared
    here as a protocol so the pub-sub layer does not import the recovery
    package.
    """

    #: Peer liveness tracker (``repro.recovery.degrade.PeerTracker``) or
    #: ``None`` when graceful degradation is disabled.
    peers: Optional[Any]

    def on_event_received(self, event: Event, route: Route) -> None: ...

    def on_event_published(self, event: Event) -> None: ...

    def on_restart(self) -> None: ...

    def handle_gossip(self, payload: Any, from_node: int) -> None: ...

    def handle_oob_request(self, payload: Any, from_node: int) -> None: ...


class Dispatcher:
    """A dispatching server of the content-based publish-subscribe network.

    One instance per simulated node (REP203): the class is slotted, and
    the swappable entry points (``receive``, ``receive_oob``,
    ``send_gossip``, ``on_deliver``, ``on_publish``) are instance
    attributes precisely so rebinding them needs no ``__dict__``.

    Parameters
    ----------
    node_id:
        Integer identity within the network.
    sim, network:
        Simulation engine and the network the dispatcher is attached to.
    pattern_space:
        The universe of patterns (Π).
    buffer_size:
        β, the FIFO event-cache capacity.
    record_routes:
        When true, event messages accumulate the dispatcher ids they
        traverse (required by publisher-based pull).
    on_deliver:
        Callback ``(node_id, event, recovered)`` invoked at each local
        delivery; wired to the metrics layer by the scenario builder.
    """

    __slots__ = ("node_id", "sim", "network", "pattern_space", "table",
                 "cache", "record_routes", "on_deliver", "on_publish",
                 "tree_routing_enabled", "recovery", "receive",
                 "receive_oob", "send_gossip", "send_oob_request",
                 "received_ids",
                 "_next_event_seq", "_pattern_counters", "match_operations",
                 "published_count", "delivered_count", "recovered_count")

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        pattern_space: PatternSpace,
        buffer_size: int,
        record_routes: bool = False,
        on_deliver: Optional[DeliveryCallback] = None,
        cache_policy: str = "fifo",
        cache_rng=None,
        cache_layout: str = "classic",
        event_registry: Optional[EventIdRegistry] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.pattern_space = pattern_space
        self.table = SubscriptionTable(pattern_space.size)
        if cache_layout == "compact":
            self.cache = CompactEventCache(buffer_size, policy=cache_policy)
        else:
            self.cache = EventCache(
                buffer_size, policy=cache_policy, rng=cache_rng
            )
        self.record_routes = record_routes
        self.on_deliver = on_deliver
        #: invoked with the fresh event right after creation, before local
        #: delivery and forwarding (metrics register expectations here).
        self.on_publish: Optional[Callable[[Event], None]] = None
        #: when False, published/received events are NOT forwarded along
        #: the tree -- used by gossip-only dissemination (the hpcast-style
        #: comparator), where epidemic exchange is the sole transport.
        self.tree_routing_enabled: bool = True
        self.recovery: Optional[RecoveryHooks] = None
        # Network-facing entry points, bound per-instance so the per-message
        # path never re-tests whether peer-liveness tracking (graceful
        # degradation) is configured: attach_recovery swaps in the tracked
        # variants only when a PeerTracker exists (docs/PERFORMANCE.md,
        # "Setup-time method binding").
        self.receive: Callable[[Message, int], None] = self._receive_plain
        self.receive_oob: Callable[[Message, int], None] = self._receive_oob_plain
        # Outbound gossip/requests, likewise instance bindings (spies
        # rebind them).
        self.send_gossip: Callable[..., None] = self._send_gossip
        self.send_oob_request: Callable[[int, Any], None] = self._send_oob_request

        #: ids of every event ever received (normally or via recovery);
        #: used for duplicate suppression and push-digest checks.  With a
        #: shared dense registry (the compact layout) this is a bitmap
        #: over it -- a hash set here was the largest per-node structure
        #: at 10^5 nodes; without one it stays a plain set (C-speed
        #: membership on the paper-scale hot path).
        self.received_ids: Union[ReceivedLog, Set[EventId]] = (
            ReceivedLog(event_registry) if event_registry is not None else set()
        )
        #: next event-id sequence number for events published here.
        self._next_event_seq = 1
        #: per-pattern sequence counters for loss-detection tags.
        self._pattern_counters: Dict[int, int] = {}
        #: number of subscription-table match operations (Section IV-E's
        #: computational-overhead discussion; bookkeeping only).
        self.match_operations = 0
        #: events published / delivered here.
        self.published_count = 0
        self.delivered_count = 0
        self.recovered_count = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_recovery(self, recovery: RecoveryHooks) -> None:
        self.recovery = recovery
        # getattr: stub recovery objects in tests may omit ``peers``.
        if getattr(recovery, "peers", None) is not None:
            # Graceful degradation is on: inbound traffic must feed the
            # peer-liveness tracker.  Without it the plain variants stay
            # bound and the hot path carries no tracking work at all.
            self.receive = self._receive_tracked
            self.receive_oob = self._receive_oob_tracked

    @property
    def local_patterns(self) -> list[int]:
        return self.table.local_patterns()

    def neighbors(self) -> list[int]:
        return self.network.neighbors(self.node_id)

    # ------------------------------------------------------------------
    # Subscribing (protocol-based; the scenario builder may instead lay
    # tables down via the oracle in repro.pubsub.system)
    # ------------------------------------------------------------------
    def subscribe(self, pattern: int) -> None:
        """Subscribe a local client to ``pattern`` and propagate.

        Propagation uses the paper's optimization: the subscription is
        forwarded to each neighbor at most once per pattern ("avoiding
        subscription forwarding of the same event pattern in the same
        direction"), tracked by the table's forwarded marks.
        """
        self.pattern_space.validate(pattern)
        self.table.add(pattern, LOCAL)
        self._propagate_subscription(pattern, exclude=None)

    def unsubscribe(self, pattern: int) -> None:
        """Remove the local subscription for ``pattern`` and propagate."""
        self.table.remove(pattern, LOCAL)
        self._propagate_unsubscription(pattern)

    def _propagate_subscription(self, pattern: int, exclude: Optional[int]) -> None:
        for neighbor in self.neighbors():
            if neighbor == exclude:
                continue
            if not self.table.mark_forwarded(pattern, neighbor):
                continue
            message = Message(
                MessageKind.SUBSCRIPTION, (SUBSCRIBE, pattern), self.node_id
            )
            self.network.send(self.node_id, neighbor, message)

    def _propagate_unsubscription(self, pattern: int) -> None:
        """Withdraw the subscription from neighbors that no longer need it.

        We still need events for ``pattern`` from neighbor ``m`` iff some
        direction other than ``m`` remains in our table; otherwise the
        subscription previously forwarded to ``m`` is withdrawn.
        """
        remaining = set(self.table.directions(pattern))
        for neighbor in self.neighbors():
            if not self.table.was_forwarded(pattern, neighbor):
                continue
            if remaining - {neighbor}:
                continue
            self.table.unmark_forwarded(pattern, neighbor)
            message = Message(
                MessageKind.SUBSCRIPTION, (UNSUBSCRIBE, pattern), self.node_id
            )
            self.network.send(self.node_id, neighbor, message)

    def _handle_subscription(self, payload: Tuple[int, int], from_node: int) -> None:
        operation, pattern = payload
        if operation == SUBSCRIBE:
            self.table.add(pattern, from_node)
            self._propagate_subscription(pattern, exclude=from_node)
        else:
            self.table.remove(pattern, from_node)
            self._propagate_unsubscription(pattern)

    # ------------------------------------------------------------------
    # Publishing and event routing
    # ------------------------------------------------------------------
    def publish(self, patterns: Tuple[int, ...]) -> Event:
        """Publish an event containing ``patterns``.

        The event is tagged at the source with a fresh per-(source, pattern)
        sequence number for *every* pattern it contains -- the paper notes
        this is possible because subscription forwarding makes subscriptions
        (and hence the pattern universe) known everywhere, and costs the
        publisher a full match against its subscription table.
        """
        for pattern in patterns:
            self.pattern_space.validate(pattern)
        if len(set(patterns)) != len(patterns):
            raise ValueError(f"event patterns must be distinct, got {patterns}")
        pattern_seqs: Dict[int, int] = {}
        for pattern in patterns:
            seq = self._pattern_counters.get(pattern, 0) + 1
            self._pattern_counters[pattern] = seq
            pattern_seqs[pattern] = seq
        # Publisher-side full match (Section IV-E computational overhead).
        self.match_operations += len(self.table)
        # Intern the content once at the source: every copy of the event
        # shares one canonical pattern tuple, and downstream hot paths key
        # their match memos on the small ``content_id`` int.
        canonical, content_id = self.pattern_space.intern_content(
            tuple(sorted(patterns))
        )
        event = Event(
            EventId(self.node_id, self._next_event_seq),
            canonical,
            pattern_seqs,
            self.sim.now,
            content_id,
        )
        self._next_event_seq += 1
        self.published_count += 1

        if self.on_publish is not None:
            self.on_publish(event)
        if self.recovery is not None:
            self.recovery.on_event_published(event)
        self.received_ids.add(event.event_id)
        directions = self.table.matching_directions_for(content_id, canonical)
        if directions and directions[0] == LOCAL:
            self._deliver(event, recovered=False)
        # "Each dispatcher caches only events for which it is either the
        # publisher or a subscriber" -- the publisher always caches.
        self.cache.insert(event)
        route: Route = (self.node_id,) if self.record_routes else None
        self._forward_event(event, route, exclude=None, directions=directions)
        return event

    def _forward_event(
        self,
        event: Event,
        route: Route,
        exclude: Optional[int],
        directions: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Forward ``event`` to every matching direction but ``exclude``.

        ``directions`` lets callers that already resolved the (memoized)
        sorted direction tuple for this event content pass it in, saving a
        second table query per hop.
        """
        if not self.tree_routing_enabled:
            return
        patterns = event.patterns
        if directions is None:
            directions = self._matching_directions(event)
        self.match_operations += len(patterns)
        if not directions:
            return
        node_id = self.node_id
        # Straight to the link layer: ``Network.send`` is two dict lookups
        # plus a dispatch on the bound ``link.transmit`` -- going through it
        # costs one extra frame per copy on the hottest path in the whole
        # simulator.  The adjacency row dict is created once per node and
        # mutated in place by reconfiguration, so reading it here always
        # sees the live topology; a missing link reproduces Network.send's
        # counted-loss semantics.
        links = self.network._adjacency[node_id]
        # One immutable envelope shared by every direction: the network layer
        # never mutates messages, so per-direction copies are pure overhead.
        message = None
        for direction in directions:
            if direction == LOCAL or direction == exclude:
                continue
            if message is None:
                message = Message(
                    _EVENT, (event, route), event.event_id.source
                )
            link = links.get(direction)
            if link is not None:
                link.transmit(node_id, message)
            else:
                # Routing table points at a broken link: the frame is lost
                # on the dead wire (send + drop, exactly like Network.send).
                observer = self.network.observer
                observer.count_send(_EVENT, node_id)
                observer.count_drop(_EVENT)

    def _matching_directions(self, event: Event) -> Tuple[int, ...]:
        """Memoized direction tuple for ``event``'s content.

        Interned events key the shared memo by their ``content_id`` int
        (one hash of a machine int); uninterned events (constructed outside
        a pattern space) fall back to the pattern-tuple key.
        """
        content_id = event.content_id
        if content_id >= 0:
            return self.table.matching_directions_for(content_id, event.patterns)
        return self.table.matching_directions_sorted(event.patterns)

    def _handle_event(self, payload: Tuple[Event, Route], from_node: int) -> None:
        event, route = payload
        event_id = event.event_id
        received_ids = self.received_ids
        if event_id in received_ids:
            return  # duplicate (possible across reconfigurations)
        received_ids.add(event_id)
        # One memoized table query serves the local-match test and the
        # forwarding decision (LOCAL sorts first: it is -1, node ids >= 0).
        directions = self._matching_directions(event)
        is_subscriber = bool(directions) and directions[0] == LOCAL
        if is_subscriber:
            self._deliver(event, recovered=False)
        if self.recovery is not None:
            self.recovery.on_event_received(event, route)
        if is_subscriber:
            self.cache.insert(event)
        if route is not None:
            route = route + (self.node_id,)
        self._forward_event(event, route, exclude=from_node, directions=directions)

    def receive_recovered_event(self, event: Event) -> None:
        """Process an event obtained through the recovery machinery.

        Recovered events are delivered locally and cached, but *not*
        forwarded on the tree: recovery is point-to-point and every
        dispatcher recovers on its own behalf.
        """
        if event.event_id in self.received_ids:
            return
        self.received_ids.add(event.event_id)
        directions = self._matching_directions(event)
        is_subscriber = bool(directions) and directions[0] == LOCAL
        if is_subscriber:
            self.recovered_count += 1
            self._deliver(event, recovered=True)
        if self.recovery is not None:
            self.recovery.on_event_received(event, None)
        if is_subscriber:
            self.cache.insert(event)

    def ingest_disseminated_event(self, event: Event) -> bool:
        """Process an event that arrived via gossip-only dissemination.

        Like :meth:`receive_recovered_event` but following the hpcast
        model the comparator implements: the event is cached whether or
        not this dispatcher subscribes (everyone relays the epidemic),
        and never forwarded on the tree.  Returns ``True`` if the event
        was new.
        """
        if event.event_id in self.received_ids:
            return False
        self.received_ids.add(event.event_id)
        directions = self._matching_directions(event)
        if bool(directions) and directions[0] == LOCAL:
            self.recovered_count += 1
            self._deliver(event, recovered=True)
        if self.recovery is not None:
            self.recovery.on_event_received(event, None)
        self.cache.insert(event)
        return True

    def _deliver(self, event: Event, recovered: bool) -> None:
        self.delivered_count += 1
        if self.on_deliver is not None:
            self.on_deliver(self.node_id, event, recovered)

    # ------------------------------------------------------------------
    # Primitives offered to the recovery algorithms
    # ------------------------------------------------------------------
    def gossip_targets(self, pattern: int, exclude: Optional[int]) -> list[int]:
        """Neighbors subscribed to ``pattern`` (candidates for gossip
        forwarding), excluding the previous hop."""
        return [
            neighbor
            for neighbor in self.table.neighbor_directions(pattern)
            if neighbor != exclude
        ]

    def _send_gossip(
        self, neighbor: int, payload: Any, size_bits: Optional[int] = None
    ) -> None:
        """Send one gossip message over the tree link to ``neighbor``.

        ``size_bits`` overrides the default wire size -- digests default
        to the event-message size (the paper's upper-bound assumption),
        but payloads carrying full events charge more.

        Exposed as the per-instance ``send_gossip`` binding (see
        ``__init__``): the class is slotted, so test harnesses interpose
        gossip spies by rebinding the attribute, not via ``__dict__``.
        """
        message = Message(MessageKind.GOSSIP, payload, self.node_id)
        if size_bits is not None:
            message.size_bits = size_bits
        self.network.send(self.node_id, neighbor, message)

    def _send_oob_request(self, to_node: int, payload: Any) -> None:
        """Out-of-band request (push receivers asking the gossiper).

        Exposed as the per-instance ``send_oob_request`` binding, like
        ``send_gossip``."""
        message = Message(MessageKind.OOB_REQUEST, payload, self.node_id)
        self.network.send_oob(self.node_id, to_node, message)

    def send_oob_event(self, to_node: int, event: Event) -> None:
        """Out-of-band retransmission of one cached event."""
        message = Message(MessageKind.OOB_EVENT, event, self.node_id)
        self.network.send_oob(self.node_id, to_node, message)

    # ------------------------------------------------------------------
    # Network-facing entry points.  ``receive``/``receive_oob`` are
    # instance attributes bound to the plain variants at construction and
    # swapped for the tracked variants by :meth:`attach_recovery` when a
    # peer-liveness tracker exists.
    # ------------------------------------------------------------------
    def _receive_plain(self, message: Message, from_node: int) -> None:
        kind = message.kind
        if kind is _EVENT:
            self._handle_event(message.payload, from_node)
        elif kind is _GOSSIP:
            recovery = self.recovery
            if recovery is not None:
                recovery.handle_gossip(message.payload, from_node)
        elif kind is _SUBSCRIPTION:
            self._handle_subscription(message.payload, from_node)
        # CONTROL and unknown kinds are ignored by design.

    def _receive_tracked(self, message: Message, from_node: int) -> None:
        kind = message.kind
        if kind is _EVENT:
            self._handle_event(message.payload, from_node)
        elif kind is _GOSSIP:
            recovery = self.recovery
            if recovery is not None:
                if recovery.peers is not None:
                    # Inbound gossip proves the neighbor is alive (graceful
                    # degradation; no-op dict miss when nothing is tracked).
                    recovery.peers.note_response(from_node)
                recovery.handle_gossip(message.payload, from_node)
        elif kind is _SUBSCRIPTION:
            self._handle_subscription(message.payload, from_node)
        # CONTROL and unknown kinds are ignored by design.

    def _receive_oob_plain(self, message: Message, from_node: int) -> None:
        kind = message.kind
        if kind is _OOB_REQUEST:
            recovery = self.recovery
            if recovery is not None:
                recovery.handle_oob_request(message.payload, from_node)
        elif kind is _OOB_EVENT:
            self.receive_recovered_event(message.payload)

    def _receive_oob_tracked(self, message: Message, from_node: int) -> None:
        kind = message.kind
        recovery = self.recovery
        if recovery is not None and recovery.peers is not None:
            # Out-of-band traffic (requests and retransmissions) also proves
            # the sender is alive.
            recovery.peers.note_response(from_node)
        if kind is _OOB_REQUEST:
            if recovery is not None:
                recovery.handle_oob_request(message.payload, from_node)
        elif kind is _OOB_EVENT:
            self.receive_recovered_event(message.payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Dispatcher {self.node_id} local={self.table.local_patterns()} "
            f"cache={len(self.cache)}/{self.cache.capacity}>"
        )
