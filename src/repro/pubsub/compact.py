"""Columnar FIFO event cache for large-scale runs.

:class:`CompactEventCache` is a drop-in replacement for the FIFO
configuration of :class:`repro.pubsub.cache.EventCache` that stores the
buffer as a ring of parallel columns instead of per-entry dict machinery:

* ``_ids`` -- ``array('q')`` of packed event identities
  ``(source << 32) | seq``;
* ``_events`` -- plain list holding the :class:`Event` objects;
* ``_loss_keys`` -- ``array('q')`` of packed loss-detection triples
  ``(source << 44) | (pattern << 30) | seq``, ``_LOSS_SLOTS`` slots per
  entry (the paper caps event contents at 3 patterns, footnote 5).

At the paper's β (tens to hundreds of entries) lookups are C-speed
``array.index`` scans -- no per-entry hash tables at all -- so a node's
whole buffer costs ``β * (8 + 8 + 3*8)`` bytes plus the shared event
objects, against several KB of dict overhead for the classic layout.
This is what makes 10⁵-node topologies fit in memory
(docs/PERFORMANCE.md, "Compact state & scaling").

Semantics match the classic FIFO cache exactly -- same eviction order,
same duplicate-insert no-op, same hit/miss accounting -- which
``tests/pubsub/test_compact_cache.py`` proves differentially and the
frozen-digest grid proves end to end.  The ``lru``/``random`` ablation
policies stay classic-only: they are studied at paper scale where the
dict layout is not a bottleneck.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional

from repro.pubsub.event import Event, EventId

__all__ = ["CompactEventCache"]

# Packed-key layouts.  'q' is a signed 64-bit array: ids use
# source < 2^31, seq < 2^32; loss keys use source < 2^19, pattern < 2^14,
# per-pattern seq < 2^30 -- orders of magnitude above any simulated
# workload (sources are node ids, Π is in the hundreds).
_ID_SEQ_BITS = 32
_LK_SOURCE_SHIFT = 44
_LK_PATTERN_SHIFT = 30
#: Loss-key slots per entry: events contain at most 3 patterns
#: (paper footnote 5; ``PatternSpace.sample_event_patterns``).
_LOSS_SLOTS = 3
_EMPTY = -1


class CompactEventCache:
    """FIFO-only columnar event buffer (see module docstring).

    The constructor signature mirrors :class:`EventCache` so the
    dispatcher can build either from the same arguments; non-FIFO
    policies are rejected.
    """

    __slots__ = ("capacity", "policy", "_ids", "_events", "_loss_keys",
                 "_head", "_size",
                 "insertions", "evictions", "hits", "misses")

    def __init__(self, capacity: int, policy: str = "fifo", rng=None) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        if policy != "fifo":
            raise ValueError(
                f"CompactEventCache is FIFO-only, got policy {policy!r}; "
                "use the classic EventCache for lru/random"
            )
        self.capacity = capacity
        self.policy = policy
        self._ids = _new_column(capacity)
        self._events: List[Optional[Event]] = [None] * capacity
        self._loss_keys = _new_column(capacity * _LOSS_SLOTS)
        #: next ring slot to write; equals the oldest entry once full.
        self._head = 0
        self._size = 0
        self.insertions = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def insert(self, event: Event) -> bool:
        """Add an event, overwriting the oldest ring slot if full.

        Duplicate inserts are no-ops that do not refresh FIFO position,
        exactly like the classic cache.  Returns ``True`` if the event is
        cached after the call.
        """
        capacity = self.capacity
        if capacity == 0:
            return False
        event_id = event.event_id
        packed = event_id.source << _ID_SEQ_BITS | event_id.seq
        ids = self._ids
        if self._size and packed in ids:
            return True
        head = self._head
        if self._size == capacity:
            self.evictions += 1
        else:
            self._size += 1
        ids[head] = packed
        self._events[head] = event
        loss_keys = self._loss_keys
        slot = head * _LOSS_SLOTS
        source_part = event_id.source << _LK_SOURCE_SHIFT
        pattern_seqs = event.pattern_seqs
        if len(pattern_seqs) > _LOSS_SLOTS:
            raise ValueError(
                f"event contains {len(pattern_seqs)} patterns; the compact "
                f"cache packs at most {_LOSS_SLOTS} (paper footnote 5)"
            )
        for pattern, seq in pattern_seqs.items():
            loss_keys[slot] = source_part | pattern << _LK_PATTERN_SHIFT | seq
            slot += 1
        for slot in range(slot, (head + 1) * _LOSS_SLOTS):
            loss_keys[slot] = _EMPTY
        self._head = (head + 1) % capacity
        self.insertions += 1
        return True

    # ------------------------------------------------------------------
    def get(self, event_id: EventId) -> Optional[Event]:
        """Lookup by event id (push-style positive digest entries)."""
        packed = event_id.source << _ID_SEQ_BITS | event_id.seq
        try:
            index = self._ids.index(packed)
        except ValueError:
            self.misses += 1
            return None
        self.hits += 1
        return self._events[index]

    def get_by_loss_key(
        self, source: int, pattern: int, pattern_seq: int
    ) -> Optional[Event]:
        """Lookup by loss-detection triple (pull-style digest entries)."""
        packed = (
            source << _LK_SOURCE_SHIFT
            | pattern << _LK_PATTERN_SHIFT
            | pattern_seq
        )
        try:
            index = self._loss_keys.index(packed)
        except ValueError:
            self.misses += 1
            return None
        self.hits += 1
        return self._events[index // _LOSS_SLOTS]

    def contains(self, event_id: EventId) -> bool:
        return (
            self._size > 0
            and (event_id.source << _ID_SEQ_BITS | event_id.seq) in self._ids
        )

    # ------------------------------------------------------------------
    def _ordered_indices(self) -> Iterator[int]:
        """Ring slots oldest first."""
        capacity = self.capacity
        size = self._size
        start = self._head if size == capacity else 0
        for offset in range(size):
            yield (start + offset) % capacity

    def matching(self, pattern: int) -> List[Event]:
        """All cached events matching ``pattern``, oldest first."""
        return [
            event
            for index in self._ordered_indices()
            if pattern in (event := self._events[index]).pattern_seqs
        ]

    def matching_ids(self, pattern: int) -> List[EventId]:
        """Ids of cached events matching ``pattern``, oldest first."""
        return [event.event_id for event in self.matching(pattern)]

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached event (crash recovery: the buffer is
        volatile).  Cumulative statistics survive; the wipe is not an
        eviction."""
        capacity = self.capacity
        self._ids = _new_column(capacity)
        self._events = [None] * capacity
        self._loss_keys = _new_column(capacity * _LOSS_SLOTS)
        self._head = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Event]:
        events = self._events
        return (events[index] for index in self._ordered_indices())

    def oldest(self) -> Optional[Event]:
        if not self._size:
            return None
        return self._events[next(self._ordered_indices())]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CompactEventCache {self._size}/{self.capacity} "
            f"evictions={self.evictions}>"
        )


def _new_column(size: int) -> "array[int]":
    return array("q", [_EMPTY]) * size if size else array("q")
