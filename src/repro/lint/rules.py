"""The determinism and protocol-invariant rules, REP001–REP007.

Each rule is a singleton object with a ``code``, a ``name``, a one-line
``summary``, and one or more ``check_*`` hooks the walker calls as it visits
the AST.  Hooks receive the :class:`~repro.lint.walker.FileContext` (import
aliases, path info), the node, and an ``add(code, node, message)`` callback.

Rules are syntactic: they reason about what the source *says*, not about
runtime types.  That keeps them fast and dependency-free, at the cost of the
occasional false positive — which is what inline suppression
(``# repro-lint: disable=REPnnn``) is for.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Callable, Dict, List, Optional

__all__ = ["Rule", "RULES", "all_codes", "rules_by_code"]

AddFn = Callable[[str, ast.AST, str], None]

#: Module-level functions of :mod:`random` that draw from (or mutate) the
#: hidden global generator.  ``random.Random`` itself is *allowed*: creating a
#: seeded instance is exactly what the determinism policy asks for.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate", "binomialvariate", "choice", "choices", "expovariate",
        "gammavariate", "gauss", "getrandbits", "getstate", "lognormvariate",
        "normalvariate", "paretovariate", "randbytes", "randint", "random",
        "randrange", "sample", "seed", "setstate", "shuffle", "triangular",
        "uniform", "vonmisesvariate", "weibullvariate",
    }
)

#: Wall-clock reads.  Any of these leaking into simulation logic makes a run
#: depend on the host machine instead of the master seed.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Set-algebra methods whose result has no defined iteration order.
_SET_ALGEBRA_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Calls that schedule or block outside the simulation engine.
_FOREIGN_SCHEDULERS = frozenset(
    {"time.sleep", "threading.Timer", "sched.scheduler", "asyncio.sleep"}
)
_FOREIGN_SCHEDULER_METHODS = frozenset(
    {"call_later", "call_at", "call_soon", "call_soon_threadsafe"}
)

#: Constructors that produce a fresh mutable object — poison as a default.
_MUTABLE_FACTORIES = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.OrderedDict",
        "collections.deque", "collections.Counter",
    }
)


class Rule:
    """Base class: identifies a rule; hooks default to no-ops."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check_call(self, ctx, node: ast.Call, add: AddFn) -> None:
        pass

    def check_iter(self, ctx, node: ast.AST, iter_node: ast.expr, add: AddFn) -> None:
        pass

    def check_function(self, ctx, node: ast.AST, add: AddFn) -> None:
        pass


class GlobalRandomRule(Rule):
    """REP001: randomness must flow through an injected ``random.Random``."""

    code = "REP001"
    name = "global-random"
    summary = (
        "call to the module-level random generator; inject a seeded "
        "random.Random (see repro.sim.rng.RandomStreams) instead"
    )

    def check_call(self, ctx, node: ast.Call, add: AddFn) -> None:
        target = ctx.resolve_call(node)
        if target is None:
            return
        if target == "random.SystemRandom":
            add(
                self.code,
                node,
                "random.SystemRandom draws OS entropy and can never be "
                "seeded; use an injected random.Random",
            )
            return
        module, _, func = target.rpartition(".")
        if module == "random" and func in _GLOBAL_RANDOM_FUNCS:
            add(
                self.code,
                node,
                f"random.{func}() uses the hidden module-level generator; "
                "inject a random.Random (see repro.sim.rng.RandomStreams)",
            )


class WallClockRule(Rule):
    """REP002: no wall-clock reads in simulation logic."""

    code = "REP002"
    name = "wall-clock"
    summary = (
        "wall-clock read; simulation time must come from Simulator.now "
        "so runs replay bit-identically"
    )

    def check_call(self, ctx, node: ast.Call, add: AddFn) -> None:
        target = ctx.resolve_call(node)
        if target in _WALL_CLOCK_CALLS:
            add(
                self.code,
                node,
                f"{target}() reads the wall clock; use Simulator.now (or "
                "suppress if this only times the run for reporting)",
            )


class UnorderedIterationRule(Rule):
    """REP003: no iteration whose order the language does not define."""

    code = "REP003"
    name = "unordered-iteration"
    summary = (
        "iteration over a set/frozenset (or bare dict.popitem) has no "
        "defined order; sort, or keep an ordered container"
    )

    def _is_unordered(self, ctx, node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal/comprehension"
        if isinstance(node, ast.Call):
            target = ctx.resolve_call(node)
            if target in ("set", "frozenset"):
                return f"{target}(...)"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_ALGEBRA_METHODS
            ):
                return f".{node.func.attr}(...)"
        return None

    def check_iter(self, ctx, node: ast.AST, iter_node: ast.expr, add: AddFn) -> None:
        what = self._is_unordered(ctx, iter_node)
        if what is not None:
            add(
                self.code,
                iter_node,
                f"iterating over {what}: set order is arbitrary and can "
                "reshuffle message schedules between runs; wrap in sorted()",
            )

    def check_call(self, ctx, node: ast.Call, add: AddFn) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "popitem"
            and not node.args
            and not node.keywords
        ):
            add(
                self.code,
                node,
                "bare .popitem() pops an implementation-ordered item; pop an "
                "explicit key (OrderedDict.popitem(last=...) is fine)",
            )


class IdBasedIdentityRule(Rule):
    """REP004: never derive ordering or hashes from ``id()``."""

    code = "REP004"
    name = "id-based-identity"
    summary = (
        "id() values change between runs and processes; order/hash by a "
        "stable node or message identifier"
    )

    def check_call(self, ctx, node: ast.Call, add: AddFn) -> None:
        if ctx.resolve_call(node) == "id":
            add(
                self.code,
                node,
                "id() is a memory address and differs between runs; use a "
                "stable identifier (node_id, event sequence number, ...)",
            )


class ScheduleMisuseRule(Rule):
    """REP005: events go through the engine's API, with sane delays."""

    code = "REP005"
    name = "schedule-misuse"
    summary = (
        "event scheduled with a statically-negative delay, or outside the "
        "engine (time.sleep/threading.Timer/asyncio); use Simulator.schedule"
    )

    @staticmethod
    def _static_negative(node: Optional[ast.expr]) -> bool:
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, (int, float))
        ):
            return node.operand.value > 0
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and node.value < 0
        )

    def check_call(self, ctx, node: ast.Call, add: AddFn) -> None:
        target = ctx.resolve_call(node)
        if target in _FOREIGN_SCHEDULERS:
            add(
                self.code,
                node,
                f"{target}() schedules/blocks outside the simulation engine; "
                "use Simulator.schedule(delay, callback, ...)",
            )
            return
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        if attr in _FOREIGN_SCHEDULER_METHODS:
            add(
                self.code,
                node,
                f".{attr}() looks like an asyncio event-loop call; simulator "
                "events must go through Simulator.schedule",
            )
            return
        callee = attr or (func.id if isinstance(func, ast.Name) else None)
        if callee in ("schedule", "schedule_at"):
            delay = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg in ("delay", "time"):
                    delay = keyword.value
            if self._static_negative(delay):
                add(
                    self.code,
                    node,
                    f"{callee}() with a negative delay/time: the engine "
                    "raises (strict) or clamps to now, both are bugs upstream",
                )


class MutableDefaultRule(Rule):
    """REP006: no mutable default arguments."""

    code = "REP006"
    name = "mutable-default"
    summary = (
        "mutable default argument is shared across calls and leaks state "
        "between simulations; default to None and create inside"
    )

    def _is_mutable(self, ctx, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.resolve_call(node) in _MUTABLE_FACTORIES
        return False

    def check_function(self, ctx, node, add: AddFn) -> None:
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d]
        for default in defaults:
            if self._is_mutable(ctx, default):
                label = getattr(node, "name", "<lambda>")
                add(
                    self.code,
                    default,
                    f"mutable default in {label}(): evaluated once at def "
                    "time and shared across every call; use None",
                )


#: Attribute patterns REP007 bans hot-path branches on: all of these are
#: fixed once construction finishes, so a per-event ``if self._injector:``
#: can only re-create the overhead that setup-time method binding removed.
#: ``[tool.repro-lint.hot-path] guards`` overrides the list.
_DEFAULT_HOT_PATH_GUARDS = (
    "_injector",
    "_observer",
    "peers",
    "_loss_model",
    "_oob_loss_model",
    "_jitter_fn",
    "fault_hooks",
    "faults",
    "degradation",
)


class HotPathGuardRule(Rule):
    """REP007: hot-path methods must not branch on static configuration.

    The registry of hot-path methods lives in ``[tool.repro-lint.hot-path]``
    (``Class.method`` fnmatch patterns); without it the rule is inert.  A
    branch on a guard attribute inside a registered method means static
    configuration is being re-checked on every simulated message -- the
    decision belongs at construction time, as a bound method variant
    (see docs/PERFORMANCE.md).
    """

    code = "REP007"
    name = "hot-path-guard"
    summary = (
        "per-event branch on setup-time configuration inside a registered "
        "hot-path method; bind a fast/checked method variant at "
        "construction instead"
    )

    def check_function(self, ctx, node, add: AddFn) -> None:
        hot_path = getattr(ctx, "hot_path", None)
        if hot_path is None or not hot_path.methods:
            return
        qualname = ctx.method_qualname(node)
        if qualname is None or not any(
            fnmatch.fnmatch(qualname, pattern) for pattern in hot_path.methods
        ):
            return
        guards = hot_path.guards or _DEFAULT_HOT_PATH_GUARDS
        # Only conditional *tests* are inspected: a checked variant may read
        # a guard attribute unconditionally, and `assert peers is not None`
        # narrowing (erased under -O) stays legal.
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.If, ast.While, ast.IfExp)):
                for sub in ast.walk(stmt.test):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and any(fnmatch.fnmatch(sub.attr, g) for g in guards)
                    ):
                        add(
                            self.code,
                            sub,
                            f"hot-path method {qualname} branches on "
                            f"self.{sub.attr} per event; the attribute is "
                            "fixed at setup time -- bind a fast/checked "
                            "method variant at construction instead",
                        )


RULES: List[Rule] = [
    GlobalRandomRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    IdBasedIdentityRule(),
    ScheduleMisuseRule(),
    MutableDefaultRule(),
    HotPathGuardRule(),
]


def all_codes() -> List[str]:
    return [rule.code for rule in RULES]


def rules_by_code() -> Dict[str, Rule]:
    return {rule.code: rule for rule in RULES}
