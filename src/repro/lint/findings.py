"""Finding and error records produced by the linter.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintError` is a file the linter could not analyse at all (unreadable,
or not valid Python).  Both are plain data, ready for text or JSON rendering
by :mod:`repro.lint.report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Finding", "LintError"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True, order=True)
class LintError:
    """A file that could not be linted (I/O or syntax error)."""

    path: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "message": self.message}

    def render(self) -> str:
        return f"{self.path}: error: {self.message}"
