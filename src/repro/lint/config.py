"""Configuration: the ``[tool.repro-lint]`` block of ``pyproject.toml``.

Recognised keys::

    [tool.repro-lint]
    exclude = ["tests/lint/fixtures"]      # glob patterns or dir prefixes
    select  = ["REP001", "REP002"]         # only these rules (default: all)
    ignore  = ["REP006"]                   # drop these rules everywhere
    analysis = true                        # whole-program REP1xx by default

    [[tool.repro-lint.per-path]]           # ordered, later entries win
    path = "src/repro/sim/rng.py"          # fnmatch pattern vs. posix rel path
    disable = ["REP001"]
    # enable = [...] re-enables codes a broader entry (or `ignore`) removed

    [tool.repro-lint.hot-path]             # REP007 registry
    methods = ["Link._transmit_*"]         # Class.method fnmatch patterns
    # guards = ["_injector", ...]          # banned per-event config branches
    #                                      # (defaults to the built-in list)

    [tool.repro-lint.layers]               # REP200/REP201 layer map
    order = ["sim", "network", "protocol", "scenarios"]   # bottom -> top
    confined = ["protocol"]                # layers needing touchpoints (REP201)
    engine-touchpoints = [                 # allowlisted engine access sites
        "Dispatcher.publish",              # Class.method or full dotted
        "repro.recovery.base.*",           # qualname; fnmatch patterns
    ]

    [tool.repro-lint.layers.members]       # layer -> module-name prefixes
    sim = ["repro.sim"]
    protocol = ["repro.pubsub", "repro.recovery"]

    [tool.repro-lint.slots]                # REP203 allowlist
    exempt = ["repro.pubsub.pattern.PatternSpace"]

    [tool.repro-lint.rng-streams]          # REP204: subsystem -> name patterns
    "repro.recovery" = ["gossip[*"]

    [tool.repro-lint.ownership]            # REP301 shared-service contract
    shared-services = [                    # classes *declared* to be shared
        "repro.pubsub.pattern.PatternSpace",   # across nodes on purpose —
        "EventIdRegistry",                     # fnmatch over qualname, bare
    ]                                          # name, and Storer.attr homes

    [tool.repro-lint.durable]              # REP306 durable-module registry
    modules = [                            # files whose on-disk artifacts
        "src/repro/campaign/*",            # must survive a crash mid-write;
        "repro.campaign.*",                # path or dotted-name fnmatch
    ]

Paths in patterns are matched against the file's path relative to the
directory containing ``pyproject.toml`` (the *config root*), in POSIX form.
A file *outside* the config root has no such relative form and is matched
by its absolute POSIX path instead — root-relative patterns like
``tests/lint/fixtures`` will not apply to it (basename-style globs such as
``*_pb2.py`` still do, since ``*`` matches across ``/``).
"""

from __future__ import annotations

import fnmatch

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Set, Tuple

__all__ = [
    "LintConfig",
    "PerPath",
    "HotPathConfig",
    "LayersConfig",
    "SlotsConfig",
    "OwnershipConfig",
    "DurableConfig",
    "load_config",
    "find_pyproject",
]


@dataclass(frozen=True)
class PerPath:
    """One per-path override: disable/enable rule codes under a pattern."""

    pattern: str
    disable: Tuple[str, ...] = ()
    enable: Tuple[str, ...] = ()


@dataclass(frozen=True)
class HotPathConfig:
    """``[tool.repro-lint.hot-path]``: the REP007 registry.

    ``methods`` holds ``Class.method`` fnmatch patterns naming the per-event
    hot-path methods; REP007 is inert when the list is empty.  ``guards``
    optionally overrides the built-in list of setup-time-constant attribute
    patterns that such methods must not branch on.
    """

    methods: Tuple[str, ...] = ()
    guards: Tuple[str, ...] = ()


@dataclass(frozen=True)
class LayersConfig:
    """``[tool.repro-lint.layers]``: the declared architecture (REP200/201).

    ``order`` lists layer names bottom (engine) to top (scenarios);
    ``members`` maps each layer to the module-name prefixes it owns.
    ``confined`` names the layers whose code may only reach the engine
    through ``engine_touchpoints`` (fnmatch patterns over both the full
    dotted qualname and the short ``Class.method`` form).  An empty
    ``order`` leaves REP200/REP201 inert.
    """

    order: Tuple[str, ...] = ()
    members: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    confined: Tuple[str, ...] = ()
    engine_touchpoints: Tuple[str, ...] = ()

    def layer_of(self, module_name: str) -> Optional[str]:
        """The layer owning ``module_name`` (longest prefix wins)."""
        best: Optional[str] = None
        best_len = -1
        for layer, prefixes in self.members:
            for prefix in prefixes:
                if module_name == prefix or module_name.startswith(prefix + "."):
                    if len(prefix) > best_len:
                        best, best_len = layer, len(prefix)
        return best

    def index_of(self, layer: str) -> int:
        return self.order.index(layer)

    def is_touchpoint(self, *names: str) -> bool:
        """True when any of ``names`` matches a touchpoint pattern."""
        return any(
            fnmatch.fnmatch(name, pattern)
            for name in names
            for pattern in self.engine_touchpoints
        )


@dataclass(frozen=True)
class SlotsConfig:
    """``[tool.repro-lint.slots]``: REP203's ``__slots__`` allowlist.

    ``exempt`` holds fnmatch patterns over the dotted class qualname
    (``repro.pubsub.cache.EventCache``) and the bare class name.
    """

    exempt: Tuple[str, ...] = ()

    def is_exempt(self, *names: str) -> bool:
        return any(
            fnmatch.fnmatch(name, pattern)
            for name in names
            for pattern in self.exempt
        )


@dataclass(frozen=True)
class OwnershipConfig:
    """``[tool.repro-lint.ownership]``: the REP301 shared-service contract.

    ``shared_services`` holds fnmatch patterns naming the classes that are
    *deliberately* one-per-simulation and aliased into every node — interners
    and registries whose replicate-or-centralize decision is a declared
    partition seam, not an accident.  Patterns match the shared class's
    dotted qualname, its bare name, and every ``Storer.attr`` home the
    object is captured at.  Anything else reachable-and-mutated from two
    node instances is a REP301 finding.
    """

    shared_services: Tuple[str, ...] = ()

    def is_declared(self, *names: str) -> bool:
        return any(
            fnmatch.fnmatch(name, pattern)
            for name in names
            for pattern in self.shared_services
        )


@dataclass(frozen=True)
class DurableConfig:
    """``[tool.repro-lint.durable]``: the REP306 durable-module registry.

    ``modules`` holds fnmatch patterns naming the modules whose on-disk
    artifacts must survive a crash mid-write (journals, manifests,
    checkpoints).  Patterns match both the file's root-relative POSIX
    path (``src/repro/campaign/*``) and its dotted module name
    (``repro.campaign.*``).  An empty list leaves REP306 inert.
    """

    modules: Tuple[str, ...] = ()

    def is_durable(self, *names: str) -> bool:
        return any(
            fnmatch.fnmatch(name, pattern)
            for name in names
            for pattern in self.modules
        )


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration."""

    root: Path = field(default_factory=Path.cwd)
    exclude: Tuple[str, ...] = ()
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    per_path: Tuple[PerPath, ...] = ()
    #: run the whole-program REP1xx analysis by default (CLI flags win).
    analysis: bool = False
    #: REP007 registry; empty ``methods`` leaves the rule inert.
    hot_path: HotPathConfig = field(default_factory=HotPathConfig)
    #: declared layer map; empty ``order`` leaves REP200/REP201 inert.
    layers: LayersConfig = field(default_factory=LayersConfig)
    #: REP203 allowlist.
    slots: SlotsConfig = field(default_factory=SlotsConfig)
    #: REP204 discipline: subsystem module prefix -> allowed stream-name
    #: fnmatch patterns.  Empty means "any literal name" (only dynamic
    #: names are flagged).
    rng_streams: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    #: REP301 declared shared services.
    ownership: OwnershipConfig = field(default_factory=OwnershipConfig)
    #: REP306 registry; empty ``modules`` leaves the rule inert.
    durable: DurableConfig = field(default_factory=DurableConfig)

    def rel_path(self, path: Path) -> str:
        """``path`` relative to the config root, in POSIX form.

        Files outside the root fall back to their absolute POSIX path, so
        root-relative ``exclude``/``per-path`` patterns never match them;
        only basename-style globs (``*_pb2.py``) do.
        """
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return resolved.as_posix()

    def is_excluded(self, rel: str) -> bool:
        for pattern in self.exclude:
            clean = pattern.rstrip("/")
            if (
                fnmatch.fnmatch(rel, clean)
                or fnmatch.fnmatch(rel, clean + "/*")
                or rel.startswith(clean + "/")
            ):
                return True
        return False

    def enabled_codes(self, rel: str, all_codes: Iterable[str]) -> Set[str]:
        """The rule codes in force for the file at ``rel``."""
        codes = set(self.select) if self.select else set(all_codes)
        codes -= set(self.ignore)
        for entry in self.per_path:
            if fnmatch.fnmatch(rel, entry.pattern):
                codes -= set(entry.disable)
                codes |= set(entry.enable)
        return codes


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` looking for a ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Path) -> LintConfig:
    """Parse ``[tool.repro-lint]`` out of ``pyproject`` (missing block ok)."""
    if tomllib is None:
        raise RuntimeError(
            f"cannot read {pyproject}: tomllib needs Python 3.11+ "
            "(or the tomli backport on 3.10); install tomli or run "
            "with --isolated"
        )
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("repro-lint", {})
    per_path = tuple(
        PerPath(
            pattern=str(entry["path"]),
            disable=tuple(entry.get("disable", ())),
            enable=tuple(entry.get("enable", ())),
        )
        for entry in table.get("per-path", ())
    )
    hot = table.get("hot-path", {})
    hot_path = HotPathConfig(
        methods=tuple(str(m) for m in hot.get("methods", ())),
        guards=tuple(str(g) for g in hot.get("guards", ())),
    )
    layers_table = table.get("layers", {})
    layers = LayersConfig(
        order=tuple(str(l) for l in layers_table.get("order", ())),
        members=tuple(
            (str(layer), tuple(str(p) for p in prefixes))
            for layer, prefixes in layers_table.get("members", {}).items()
        ),
        confined=tuple(str(l) for l in layers_table.get("confined", ())),
        engine_touchpoints=tuple(
            str(t) for t in layers_table.get("engine-touchpoints", ())
        ),
    )
    slots_table = table.get("slots", {})
    slots = SlotsConfig(
        exempt=tuple(str(p) for p in slots_table.get("exempt", ()))
    )
    rng_streams = tuple(
        (str(prefix), tuple(str(p) for p in patterns))
        for prefix, patterns in table.get("rng-streams", {}).items()
    )
    ownership_table = table.get("ownership", {})
    ownership = OwnershipConfig(
        shared_services=tuple(
            str(p) for p in ownership_table.get("shared-services", ())
        )
    )
    durable_table = table.get("durable", {})
    durable = DurableConfig(
        modules=tuple(str(p) for p in durable_table.get("modules", ()))
    )
    return LintConfig(
        root=pyproject.parent,
        exclude=tuple(table.get("exclude", ())),
        select=tuple(table.get("select", ())),
        ignore=tuple(table.get("ignore", ())),
        per_path=per_path,
        analysis=bool(table.get("analysis", False)),
        hot_path=hot_path,
        layers=layers,
        slots=slots,
        rng_streams=rng_streams,
        ownership=ownership,
        durable=durable,
    )


def config_for_paths(paths: Sequence[Path]) -> LintConfig:
    """Locate and load the config governing ``paths`` (first hit wins)."""
    for path in paths:
        pyproject = find_pyproject(path)
        if pyproject is not None:
            return load_config(pyproject)
    return LintConfig()
