"""``repro.lint`` — AST-based determinism & protocol-invariant linter.

The paper's evaluation stands on bit-identical seeded re-runs: every curve
in Figs. 3–10 must replay exactly from a master seed.  This package enforces
the coding rules that make that true, statically:

========  =======================================================
REP001    randomness outside injected ``random.Random`` streams
REP002    wall-clock reads (``time.time``, ``datetime.now``, ...)
REP003    iteration over unordered sets / bare ``dict.popitem()``
REP004    ``id()``-derived ordering or hashing
REP005    negative delays or scheduling outside ``Simulator``
REP006    mutable default arguments
========  =======================================================

On top of the per-file rules, ``--analysis`` runs a whole-program pass
(:mod:`repro.lint.analysis`) enforcing the cross-module contracts the hot
paths rely on:

========  =======================================================
REP100    memo backing state mutated without ``_invalidate()``
REP101    shared forward ``Message`` mutated after send/schedule
REP102    scheduled callback unresolvable / wrong arity
REP103    RNG constructed outside ``repro/sim/rng.py``
REP104    non-picklable callable submitted to an executor
REP105    recovery subclass breaks the base-class contract
========  =======================================================

Run it with ``python -m repro.lint <paths>`` or the ``repro-lint`` console
script; see ``docs/LINTING.md`` for the full rule rationale and the
suppression / configuration syntax.
"""

from __future__ import annotations

from .analysis import ANALYSIS_RULES, analysis_codes, run_analysis
from .cli import LintResult, lint_paths, main
from .config import LintConfig, PerPath, load_config
from .findings import Finding, LintError
from .rules import RULES, all_codes

__all__ = [
    "ANALYSIS_RULES",
    "Finding",
    "LintConfig",
    "LintError",
    "LintResult",
    "PerPath",
    "RULES",
    "all_codes",
    "analysis_codes",
    "lint_paths",
    "load_config",
    "main",
    "run_analysis",
]
