"""Orchestration: run the whole-program rules over a set of files.

:func:`run_analysis` takes the same ``(path, rel_path)`` pairs the per-file
walker lints, builds one :class:`~repro.lint.analysis.model.Project` over all
of them, runs every enabled REP1xx/REP2xx rule, and filters the raw findings
through the same per-path configuration and inline-suppression machinery as
the per-file rules — a ``# repro-lint: disable=REP101`` comment works
identically for both families.

:func:`build_arch_report` reuses the same project model and
:class:`~repro.lint.analysis.arch_rules.ArchContext` to emit the resolved
layer graph and per-module effect summary behind ``repro-lint
--arch-report``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..config import LintConfig
from ..findings import Finding
from ..suppress import SuppressionMap, parse_suppressions
from .arch_rules import ARCH_RULES, ArchContext, arch_codes
from .model import ModuleInfo, Project, build_project
from .rules import ANALYSIS_RULES as CORE_ANALYSIS_RULES

__all__ = ["run_analysis", "build_arch_report", "ALL_ANALYSIS_RULES"]

#: Both whole-program families, in catalogue order.
ALL_ANALYSIS_RULES = [*CORE_ANALYSIS_RULES, *ARCH_RULES]

#: rel-path → enabled rule codes for that file (the CLI passes a closure
#: over the loaded LintConfig).
EnabledFn = Callable[[str], Set[str]]


def run_analysis(
    files: Sequence[Tuple[Path, str]],
    enabled_for: EnabledFn,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run REP100–REP105 and REP200–REP205 over ``files`` and return
    suppression-filtered findings sorted in the standard order."""
    if config is None:
        config = LintConfig()
    project = build_project(files)
    raw: List[Tuple[ModuleInfo, ast.AST, str, str]] = []

    def add(module: ModuleInfo, node: ast.AST, code: str, message: str) -> None:
        raw.append((module, node, code, message))

    wanted = {rule.code for rule in ALL_ANALYSIS_RULES}
    for rule in CORE_ANALYSIS_RULES:
        rule.run(project, add)
    context = ArchContext(project, config)
    for arch_rule in ARCH_RULES:
        arch_rule.run_arch(context, add)

    suppression_cache: Dict[str, SuppressionMap] = {}
    findings: List[Finding] = []
    for module, node, code, message in raw:
        if code not in wanted or code not in enabled_for(module.rel):
            continue
        suppressions = suppression_cache.get(module.rel)
        if suppressions is None:
            suppressions = parse_suppressions(module.source, module.tree)
            suppression_cache[module.rel] = suppressions
        line = getattr(node, "lineno", 0)
        end_line = getattr(node, "end_lineno", None) or line
        if suppressions.is_suppressed_span(code, line, end_line):
            continue
        findings.append(
            Finding(
                path=module.rel,
                line=line,
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )
    findings.sort()
    return findings


# ----------------------------------------------------------------------
# Architecture report (repro-lint --arch-report)
# ----------------------------------------------------------------------


def build_arch_report(
    files: Sequence[Tuple[Path, str]], config: Optional[LintConfig] = None
) -> Dict[str, Any]:
    """The resolved layer graph + per-module effect summary, as plain data.

    Everything is sorted so the output is byte-stable for a given tree —
    the golden-output test and the CI artifact rely on that.
    """
    if config is None:
        config = LintConfig()
    project = build_project(files)
    context = ArchContext(project, config)
    layer_map = context.layer_map

    violations = [
        {
            "source": edge.source.name,
            "source_layer": edge.source_layer,
            "target": edge.target,
            "target_layer": edge.target_layer,
            "line": getattr(edge.node, "lineno", 0),
        }
        for edge in layer_map.violations()
    ]
    violations.sort(key=lambda v: (v["source"], v["line"]))

    edges = [
        {"from": source, "to": target, "imports": count}
        for (source, target), count in sorted(
            layer_map.edge_counts().items()
        )
    ]

    touchpoints_used: Set[str] = set()
    for record in context.effects.functions.values():
        if record.direct & {"sim-time", "sim-schedule", "sim-engine"}:
            function = record.function
            if context.layer_map.is_confined(function.module.name):
                if context.is_touchpoint(function):
                    touchpoints_used.add(function.qualname)

    effects_by_module = {
        name: context.effects.module_summary(name)
        for name in sorted(project.modules)
    }
    effects_by_module = {
        name: summary for name, summary in effects_by_module.items() if summary
    }

    per_node = [
        {
            "class": qualname,
            "reason": context.per_node[qualname],
            "slots": _has_slots(context, qualname),
        }
        for qualname in sorted(context.per_node)
        if qualname in context.project.classes
        and context.below_top(
            context.project.classes[qualname].module.name
        )
    ]

    return {
        "layers": {
            "order": list(config.layers.order),
            "confined": list(config.layers.confined),
            "modules": layer_map.modules_by_layer(),
        },
        "imports": {"edges": edges, "violations": violations},
        "touchpoints": {
            "declared": sorted(config.layers.engine_touchpoints),
            "used": sorted(touchpoints_used),
        },
        "effects": effects_by_module,
        "per_node_classes": per_node,
        "files_analyzed": len(project.modules),
    }


def _has_slots(context: ArchContext, qualname: str) -> bool:
    from .arch_rules import SlotsRule

    cls = context.project.classes.get(qualname)
    if cls is None:
        return False
    return SlotsRule()._slotless_ancestor(cls) is None
