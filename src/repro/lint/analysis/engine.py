"""Orchestration: run the whole-program rules over a set of files.

:func:`run_analysis` takes the same ``(path, rel_path)`` pairs the per-file
walker lints, builds one :class:`~repro.lint.analysis.model.Project` over all
of them, runs every enabled REP1xx rule, and filters the raw findings
through the same per-path configuration and inline-suppression machinery as
the per-file rules — a ``# repro-lint: disable=REP101`` comment works
identically for both families.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Set, Tuple

from ..findings import Finding
from ..suppress import SuppressionMap, parse_suppressions
from .model import ModuleInfo, Project, build_project
from .rules import ANALYSIS_RULES, analysis_codes

__all__ = ["run_analysis"]

#: rel-path → enabled rule codes for that file (the CLI passes a closure
#: over the loaded LintConfig).
EnabledFn = Callable[[str], Set[str]]


def run_analysis(
    files: Sequence[Tuple[Path, str]], enabled_for: EnabledFn
) -> List[Finding]:
    """Run REP100–REP105 over ``files`` and return suppression-filtered
    findings sorted in the standard order."""
    project = build_project(files)
    raw: List[Tuple[ModuleInfo, ast.AST, str, str]] = []

    def add(module: ModuleInfo, node: ast.AST, code: str, message: str) -> None:
        raw.append((module, node, code, message))

    wanted = set(analysis_codes())
    for rule in ANALYSIS_RULES:
        rule.run(project, add)

    suppression_cache: Dict[str, SuppressionMap] = {}
    findings: List[Finding] = []
    for module, node, code, message in raw:
        if code not in wanted or code not in enabled_for(module.rel):
            continue
        suppressions = suppression_cache.get(module.rel)
        if suppressions is None:
            suppressions = parse_suppressions(module.source, module.tree)
            suppression_cache[module.rel] = suppressions
        line = getattr(node, "lineno", 0)
        end_line = getattr(node, "end_lineno", None) or line
        if suppressions.is_suppressed_span(code, line, end_line):
            continue
        findings.append(
            Finding(
                path=module.rel,
                line=line,
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )
    findings.sort()
    return findings
