"""Orchestration: run the whole-program rules over a set of files.

:func:`run_analysis` takes the same ``(path, rel_path)`` pairs the per-file
walker lints, builds one :class:`~repro.lint.analysis.model.Project` over all
of them, runs every enabled REP1xx/REP2xx rule, and filters the raw findings
through the same per-path configuration and inline-suppression machinery as
the per-file rules — a ``# repro-lint: disable=REP101`` comment works
identically for both families.

:func:`build_arch_report` reuses the same project model and
:class:`~repro.lint.analysis.arch_rules.ArchContext` to emit the resolved
layer graph and per-module effect summary behind ``repro-lint
--arch-report``; :func:`build_ownership_report` does the same for the
ownership model behind ``--ownership-report`` — the node-ownership
graph, the touchpoints each cross-node edge uses, and the candidate
partition-cut seams the sharding work will consume.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..config import LintConfig
from ..findings import Finding
from ..suppress import SuppressionMap, parse_suppressions
from .arch_rules import ARCH_RULES, ArchContext, arch_codes
from .concurrency_rules import CONCURRENCY_RULES, ConcurrencyContext
from .model import ModuleInfo, Project, build_project
from .rules import ANALYSIS_RULES as CORE_ANALYSIS_RULES

__all__ = [
    "run_analysis",
    "build_arch_report",
    "build_ownership_report",
    "ALL_ANALYSIS_RULES",
]

#: All three whole-program families, in catalogue order.
ALL_ANALYSIS_RULES = [*CORE_ANALYSIS_RULES, *ARCH_RULES, *CONCURRENCY_RULES]

#: rel-path → enabled rule codes for that file (the CLI passes a closure
#: over the loaded LintConfig).
EnabledFn = Callable[[str], Set[str]]


def run_analysis(
    files: Sequence[Tuple[Path, str]],
    enabled_for: EnabledFn,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run REP100–REP105, REP200–REP205, and REP300–REP306 over
    ``files`` and return suppression-filtered findings sorted in the
    standard order."""
    if config is None:
        config = LintConfig()
    project = build_project(files)
    raw: List[Tuple[ModuleInfo, ast.AST, str, str]] = []

    def add(module: ModuleInfo, node: ast.AST, code: str, message: str) -> None:
        raw.append((module, node, code, message))

    wanted = {rule.code for rule in ALL_ANALYSIS_RULES}
    for rule in CORE_ANALYSIS_RULES:
        rule.run(project, add)
    context = ArchContext(project, config)
    for arch_rule in ARCH_RULES:
        arch_rule.run_arch(context, add)
    concurrency = ConcurrencyContext(context)
    for conc_rule in CONCURRENCY_RULES:
        conc_rule.run_concurrency(concurrency, add)

    suppression_cache: Dict[str, SuppressionMap] = {}
    findings: List[Finding] = []
    for module, node, code, message in raw:
        if code not in wanted or code not in enabled_for(module.rel):
            continue
        suppressions = suppression_cache.get(module.rel)
        if suppressions is None:
            suppressions = parse_suppressions(module.source, module.tree)
            suppression_cache[module.rel] = suppressions
        line = getattr(node, "lineno", 0)
        end_line = getattr(node, "end_lineno", None) or line
        if suppressions.is_suppressed_span(code, line, end_line):
            continue
        findings.append(
            Finding(
                path=module.rel,
                line=line,
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )
    findings.sort()
    return findings


# ----------------------------------------------------------------------
# Architecture report (repro-lint --arch-report)
# ----------------------------------------------------------------------


def build_arch_report(
    files: Sequence[Tuple[Path, str]], config: Optional[LintConfig] = None
) -> Dict[str, Any]:
    """The resolved layer graph + per-module effect summary, as plain data.

    Everything is sorted so the output is byte-stable for a given tree —
    the golden-output test and the CI artifact rely on that.
    """
    if config is None:
        config = LintConfig()
    project = build_project(files)
    context = ArchContext(project, config)
    layer_map = context.layer_map

    violations = [
        {
            "source": edge.source.name,
            "source_layer": edge.source_layer,
            "target": edge.target,
            "target_layer": edge.target_layer,
            "line": getattr(edge.node, "lineno", 0),
        }
        for edge in layer_map.violations()
    ]
    violations.sort(key=lambda v: (v["source"], v["line"]))

    edges = [
        {"from": source, "to": target, "imports": count}
        for (source, target), count in sorted(
            layer_map.edge_counts().items()
        )
    ]

    touchpoints_used: Set[str] = set()
    for record in context.effects.functions.values():
        if record.direct & {"sim-time", "sim-schedule", "sim-engine"}:
            function = record.function
            if context.layer_map.is_confined(function.module.name):
                if context.is_touchpoint(function):
                    touchpoints_used.add(function.qualname)

    effects_by_module = {
        name: context.effects.module_summary(name)
        for name in sorted(project.modules)
    }
    effects_by_module = {
        name: summary for name, summary in effects_by_module.items() if summary
    }

    per_node = [
        {
            "class": qualname,
            "reason": context.per_node[qualname],
            "slots": _has_slots(context, qualname),
        }
        for qualname in sorted(context.per_node)
        if qualname in context.project.classes
        and context.below_top(
            context.project.classes[qualname].module.name
        )
    ]

    return {
        "layers": {
            "order": list(config.layers.order),
            "confined": list(config.layers.confined),
            "modules": layer_map.modules_by_layer(),
        },
        "imports": {"edges": edges, "violations": violations},
        "touchpoints": {
            "declared": sorted(config.layers.engine_touchpoints),
            "used": sorted(touchpoints_used),
        },
        "effects": effects_by_module,
        "per_node_classes": per_node,
        "files_analyzed": len(project.modules),
    }


def _has_slots(context: ArchContext, qualname: str) -> bool:
    from .arch_rules import SlotsRule

    cls = context.project.classes.get(qualname)
    if cls is None:
        return False
    return SlotsRule()._slotless_ancestor(cls) is None


# ----------------------------------------------------------------------
# Ownership report (repro-lint --ownership-report)
# ----------------------------------------------------------------------


def build_ownership_report(
    files: Sequence[Tuple[Path, str]], config: Optional[LintConfig] = None
) -> Dict[str, Any]:
    """The node-ownership graph + partition-cut seams, as plain data.

    Per per-node class: every instance attribute with its inferred owner
    (node-local / engine / shared / shared-immutable / link-payload).
    ``cross_node_edges`` lists each boundary-attr call site — the places
    a partition cut must turn into serialized sends.  ``shared_services``
    lists each loop-invariant object captured by every node instance,
    whether it is mutated, and whether the config declares it.  Like the
    arch report, everything is sorted so output is byte-stable.
    """
    import ast as _ast

    from ..config import LintConfig as _LintConfig
    from .ownership import BOUNDARY_SEND_ATTRS

    if config is None:
        config = _LintConfig()
    project = build_project(files)
    context = ArchContext(project, config)
    concurrency = ConcurrencyContext(context)
    model = concurrency.model

    # Split captures: the engine/transport substrate every node holds is
    # a declared runtime seam, not an accidental shared object.
    shared_attrs = set()
    engine_attrs = set()
    for capture in concurrency.captures:
        if capture.arg_class is not None and concurrency.unconfined_layer(
            capture.arg_class
        ):
            engine_attrs |= capture.attr_homes
        else:
            shared_attrs |= capture.attr_homes
    payload_attrs = model.payload_attrs()

    per_node = []
    for qualname in sorted(context.per_node):
        cls = project.classes.get(qualname)
        if cls is None:
            continue
        if config.layers.order and not context.below_top(cls.module.name):
            continue
        attrs = dict(model.attr_bindings.get(qualname, {}))
        names = set(attrs)
        names.update(a for c, a in shared_attrs if c == qualname)
        names.update(a for c, a in payload_attrs if c == qualname)
        for method in cls.methods.values():
            for node in _ast.walk(method.node):
                if isinstance(node, _ast.Assign):
                    targets = node.targets
                elif isinstance(node, _ast.AnnAssign):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    if (
                        isinstance(target, _ast.Attribute)
                        and isinstance(target.value, _ast.Name)
                        and target.value.id == "self"
                    ):
                        names.add(target.attr)
        per_node.append(
            {
                "class": qualname,
                "reason": context.per_node[qualname],
                "owners": {
                    attr: (
                        "engine"
                        if (qualname, attr) in engine_attrs
                        else model.owner_of(
                            cls, attr, shared_attrs, payload_attrs
                        )
                    )
                    for attr in sorted(names)
                },
            }
        )

    cross_node_edges = [
        {
            "function": call.function.qualname,
            "touchpoint": call.attr,
            "kind": "send" if call.attr in BOUNDARY_SEND_ATTRS else "schedule",
            "line": getattr(call.node, "lineno", 0),
        }
        for call in model.boundary_calls()
    ]
    cross_node_edges.sort(
        key=lambda e: (e["function"], e["line"], e["touchpoint"])
    )

    shared_services = [
        {
            "constructed": capture.construction.cls.qualname,
            "at": capture.construction.function.qualname,
            "line": getattr(capture.construction.node, "lineno", 0),
            "object": (
                capture.arg_class.qualname
                if capture.arg_class is not None
                else f"<param {capture.param}>"
            ),
            "captured_at": [
                f"{qualname}.{attr}"
                for qualname, attr in sorted(capture.attr_homes)
            ],
            "mutated": capture.mutated,
            "declared": concurrency.declared_shared(capture),
            "substrate": bool(
                capture.arg_class is not None
                and concurrency.unconfined_layer(capture.arg_class)
            ),
        }
        for capture in concurrency.captures
    ]

    seams = {
        "declared_touchpoints": sorted(config.layers.engine_touchpoints),
        "boundary_attrs_used": sorted(
            {edge["touchpoint"] for edge in cross_node_edges}
        ),
        "shared_services": sorted(
            {
                service["object"]
                for service in shared_services
                if service["declared"]
            }
        ),
        "undeclared_shared_mutable": sorted(
            {
                service["object"]
                for service in shared_services
                if service["mutated"]
                and not service["declared"]
                and not service["substrate"]
            }
        ),
    }

    return {
        "per_node_classes": per_node,
        "cross_node_edges": cross_node_edges,
        "shared_services": shared_services,
        "partition_seams": seams,
        "files_analyzed": len(project.modules),
    }
