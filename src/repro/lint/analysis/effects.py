"""Interprocedural effect inference over the project call graph.

Every analyzed function gets an *effect set* describing what it touches
beyond its arguments, propagated transitively through the call graph the
import/MRO machinery of :mod:`.model` can resolve:

========================  ==============================================
``sim-time``              reads the simulation clock (``<sim>.now``)
``sim-schedule``          schedules on the calendar (``<sim>.schedule*``)
``sim-engine``            holds/constructs an engine object (``.sim`` /
                          ``._sim`` reads, engine-layer constructors)
``rng-draw``              draws from an injected RNG
``rng-stream:<name>``     requests a named ``RandomStreams`` stream
                          (``?`` when the name is not a literal)
``wall-clock``            reads host time (``time.time`` & friends)
``blocking``              calls a host-blocking primitive (``time.sleep``,
                          sync socket/file/subprocess I/O)
``net-send``              emits a message (``.send``/``.send_oob``/
                          ``.transmit``/``.send_gossip``)
``global-mut:<target>``   mutates a module-level mutable binding
========================  ==============================================

Resolvable call edges are ``self.method()`` (through the MRO),
``super().method()``, module-level functions, class constructors
(edge to ``__init__``), ``functools.partial`` targets, instance-bound
entry points (``self.send_gossip`` rebound in ``__init__`` to
``self._send_gossip``), and ``@property`` reads.  Effects of nested
``def``/``lambda`` bodies are attributed to the enclosing function — a
callback's effects belong to whoever builds it.

Propagation is a fixpoint union with one asymmetry: the three ``sim-*``
effects do **not** propagate out of a declared *engine touchpoint* or out
of a module whose layer is mapped but not confined (the transport layer is
*licensed* to schedule; calling ``network.send`` is not engine coupling).
That is what lets REP201 say "protocol code reaches the engine" without
flagging every caller of the network API.

The same pass records where classes are constructed (and whether inside a
loop), which seeds the per-node/per-event class set REP202 and REP203
reason about.
"""

from __future__ import annotations

import ast
from typing import (
    Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union,
)

from ..config import LayersConfig
from .dataflow import MUTATING_METHODS
from .layers import LayerMap
from .model import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_parts,
)

__all__ = [
    "SIM_TIME",
    "SIM_SCHEDULE",
    "SIM_ENGINE",
    "RNG_DRAW",
    "WALL_CLOCK",
    "BLOCKING",
    "NET_SEND",
    "STREAM_PREFIX",
    "GLOBAL_MUT_PREFIX",
    "SIM_EFFECTS",
    "Construction",
    "StreamRequest",
    "FunctionEffects",
    "EffectMap",
    "infer_effects",
    "resolve_call_target",
    "stream_name",
]

SIM_TIME = "sim-time"
SIM_SCHEDULE = "sim-schedule"
SIM_ENGINE = "sim-engine"
RNG_DRAW = "rng-draw"
WALL_CLOCK = "wall-clock"
BLOCKING = "blocking"
NET_SEND = "net-send"
#: parameterized effects: ``rng-stream:<name>@<requesting module>`` and
#: ``global-mut:<module>.<binding>``.
STREAM_PREFIX = "rng-stream:"
GLOBAL_MUT_PREFIX = "global-mut:"

SIM_EFFECTS = frozenset({SIM_TIME, SIM_SCHEDULE, SIM_ENGINE})

#: Receiver path segments that mark an expression as "the simulator".
_SIMISH = frozenset({"sim", "_sim", "simulator", "_simulator"})
#: Attribute reads that hand out an engine reference.
_ENGINE_ATTRS = frozenset({"sim", "_sim"})
_SCHEDULE_ATTRS = frozenset(
    {"schedule", "schedule_at", "schedule_call", "schedule_call_at"}
)
#: Draw methods of ``random.Random`` (receiver must look like an RNG).
_RNG_DRAW_METHODS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randint", "random", "randrange", "sample", "shuffle", "triangular",
        "uniform", "vonmisesvariate",
    }
)
_RNGISH = frozenset({"rng", "_rng", "rand", "random", "rnd"})
_STREAM_METHODS = frozenset({"stream", "substreams", "compact_stream"})
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "datetime.datetime.now", "datetime.datetime.utcnow",
    }
)
#: Host-blocking primitives: sleeping, synchronous socket/file/process
#: I/O, console input.  Resolved against the canonical dotted call name
#: (``open`` is the bare builtin).  Anything here reachable from
#: protocol-layer code stalls a cooperative (asyncio) backend — REP304.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep", "open", "input",
        "socket.socket", "socket.create_connection", "socket.socketpair",
        "subprocess.run", "subprocess.call", "subprocess.check_call",
        "subprocess.check_output", "subprocess.Popen",
        "os.system", "os.popen", "os.wait", "os.waitpid",
        "urllib.request.urlopen", "http.client.HTTPConnection",
        "requests.get", "requests.post", "requests.request",
    }
)
#: Attribute calls that emit a message into the transport (the same
#: boundary set REP101/REP205 use); seeds the ``net-send`` effect.
_NET_SEND_ATTRS = frozenset({"send", "send_oob", "transmit", "send_gossip"})
#: Constructors whose result is a mutable container (module-global scan).
_MUTABLE_FACTORY_NAMES = frozenset(
    {
        "dict", "list", "set", "collections.defaultdict",
        "collections.deque", "collections.Counter",
        "collections.OrderedDict",
    }
)
_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp,
                     ast.DictComp)


def stream_name(effect: str) -> Tuple[str, str]:
    """``rng-stream:<name>@<module>`` → ``(name, module)``."""
    body = effect[len(STREAM_PREFIX):]
    name, _, origin = body.partition("@")
    return name, origin


class Construction:
    """One resolved ``Cls(...)`` call site."""

    __slots__ = ("cls", "node", "in_loop", "function")

    def __init__(
        self,
        cls: ClassInfo,
        node: ast.Call,
        in_loop: bool,
        function: FunctionInfo,
    ) -> None:
        self.cls = cls
        self.node = node
        self.in_loop = in_loop
        self.function = function


class StreamRequest:
    """One ``<streams>.stream(...)`` / ``substreams(...)`` call site.

    ``name`` is the literal stream name, a ``prefix*`` pattern when the
    name is an f-string with a literal head, or ``None`` when fully
    dynamic.  ``consumer`` is the module whose code the stream is handed
    to: the innermost enclosing resolved call's defining module, falling
    back to the requesting module itself.
    """

    __slots__ = ("name", "node", "function", "consumer")

    def __init__(
        self,
        name: Optional[str],
        node: ast.Call,
        function: FunctionInfo,
        consumer: str,
    ) -> None:
        self.name = name
        self.node = node
        self.function = function
        self.consumer = consumer


class FunctionEffects:
    """Direct facts + fixpoint-propagated effect set for one function."""

    __slots__ = ("function", "direct", "effects", "sites", "callees",
                 "constructions", "stream_requests", "via")

    def __init__(self, function: FunctionInfo) -> None:
        self.function = function
        self.direct: Set[str] = set()
        #: direct ∪ propagated (after the fixpoint).
        self.effects: Set[str] = set()
        #: effect -> first AST node exhibiting it *directly*.
        self.sites: Dict[str, ast.AST] = {}
        #: resolved ``(callee qualname, call site inside a loop?)`` pairs.
        self.callees: List[Tuple[str, bool]] = []
        self.constructions: List[Construction] = []
        self.stream_requests: List[StreamRequest] = []
        #: effect -> callee qualname it was first inherited from.
        self.via: Dict[str, str] = {}


class EffectMap:
    """The inferred effects of every function in the project."""

    def __init__(self, project: Project, layer_map: LayerMap) -> None:
        self.project = project
        self.layer_map = layer_map
        self.functions: Dict[str, FunctionEffects] = {}

    def of(self, qualname: str) -> Optional[FunctionEffects]:
        return self.functions.get(qualname)

    def all_constructions(self) -> Iterable[Construction]:
        for record in self.functions.values():
            yield from record.constructions

    def module_summary(self, module_name: str) -> Dict[str, List[str]]:
        """effect -> sorted function qualnames exhibiting it (report)."""
        summary: Dict[str, Set[str]] = {}
        for qualname, record in self.functions.items():
            if record.function.module.name != module_name:
                continue
            for effect in record.effects:
                if effect.startswith(STREAM_PREFIX):
                    effect = STREAM_PREFIX + stream_name(effect)[0]
                summary.setdefault(effect, set()).add(qualname)
        return {
            effect: sorted(owners)
            for effect, owners in sorted(summary.items())
        }


# ----------------------------------------------------------------------
# Direct-effect extraction
# ----------------------------------------------------------------------


def module_mutable_globals(module: ModuleInfo) -> Dict[str, ast.stmt]:
    """Module-level names bound to mutable containers."""
    out: Dict[str, ast.stmt] = {}
    for stmt in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_value(module, value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt
    return out


def _is_mutable_value(module: ModuleInfo, value: ast.expr) -> bool:
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        resolved = module.resolve_call(value)
        return resolved in _MUTABLE_FACTORY_NAMES
    return False


def module_class_registries(
    module: ModuleInfo, project: Project
) -> Dict[str, List[ClassInfo]]:
    """Module-level dict literals whose values are project classes.

    ``ALGORITHMS = {NoRecovery.name: NoRecovery, ...}`` is a *class
    registry*: calling a subscript of it (``ALGORITHMS[name](...)``)
    constructs one of the registered classes.  The extractor turns such
    calls into construction records for every registered class, so the
    per-node closure sees through registry-based factories.
    """
    registries: Dict[str, List[ClassInfo]] = {}
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not isinstance(stmt.value, ast.Dict):
            continue
        classes: List[ClassInfo] = []
        for value in stmt.value.values:
            parts = dotted_parts(value)
            if parts is None:
                continue
            resolved = project.resolve_name(module, parts)
            if isinstance(resolved, ClassInfo):
                classes.append(resolved)
        if not classes:
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                registries[target.id] = classes
    return registries


def _local_bindings(func: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(locally-bound names, ``global``-declared names) of a function body."""
    local: Set[str] = set()
    declared_global: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ):
            local.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            local.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    local.add(sub.id)
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    local.add(sub.id)
    return local - declared_global, declared_global


def _receiver_parts(call_func: ast.expr) -> Optional[List[str]]:
    if not isinstance(call_func, ast.Attribute):
        return None
    return dotted_parts(call_func.value)


def _is_simish(parts: Optional[Sequence[str]]) -> bool:
    return bool(parts) and bool(_SIMISH.intersection(parts))


def _is_rngish(parts: Optional[Sequence[str]]) -> bool:
    if not parts:
        return False
    return any(
        part in _RNGISH or part.endswith("rng") or part.startswith("rng")
        for part in parts
    )


def _is_streamsish(parts: Optional[Sequence[str]]) -> bool:
    if not parts:
        return False
    return any("stream" in part or part in ("rngs", "_rngs") for part in parts)


def _literal_stream_name(arg: ast.expr) -> Optional[str]:
    """Literal / prefix-literal stream name, ``None`` when dynamic."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        prefix = ""
        for value in arg.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                prefix += value.value
            else:
                break
        return f"{prefix}*" if prefix else None
    return None


def resolve_call_target(
    project: Project,
    module: ModuleInfo,
    cls: Optional[ClassInfo],
    node: ast.Call,
) -> Union[ClassInfo, FunctionInfo, None]:
    """Resolve one call site to the project symbol it invokes.

    Shared by the effect extractor and the ownership pass.  Handles
    ``self.method()`` (through the MRO), ``super().method()``, dotted
    module-level names, constructors, and ``functools.partial(target,
    ...)`` (resolved to ``target`` — a callback's effects belong to
    whoever builds it).
    """
    func = node.func
    parts = dotted_parts(func)
    if parts is not None:
        canonical = module.resolve_parts(parts)
        if canonical == "functools.partial" and node.args:
            target = node.args[0]
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and cls is not None
            ):
                return cls.mro_method(target.attr)
            target_parts = dotted_parts(target)
            if target_parts is not None:
                return project.resolve_name(module, target_parts)
            return None
    # self.method() through the MRO.
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and cls is not None
    ):
        return cls.mro_method(func.attr)
    # super().method()
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
        and cls is not None
    ):
        for base in cls.bases:
            method = base.mro_method(func.attr)
            if method is not None:
                return method
        return None
    if parts is None:
        return None
    return project.resolve_name(module, parts)


def _is_property(method: FunctionInfo) -> bool:
    """Decorated as a ``@property`` / ``@cached_property`` getter?"""
    for decorator in getattr(method.node, "decorator_list", []):
        parts = dotted_parts(decorator)
        if parts and parts[-1] in ("property", "cached_property"):
            return True
    return False


def _instance_bindings(
    cls: ClassInfo,
    cache: Dict[str, Dict[str, List[FunctionInfo]]],
) -> Dict[str, List[FunctionInfo]]:
    """``attr -> methods`` for instance attributes rebound to the class's
    own methods (``self.receive = self._receive_event`` at setup time).
    Scans the whole MRO once per class and memoizes in ``cache``."""
    hit = cache.get(cls.qualname)
    if hit is not None:
        return hit
    bindings: Dict[str, List[FunctionInfo]] = {}
    for ancestor in reversed(cls.mro()):
        for method in ancestor.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                ):
                    continue
                target_method = cls.mro_method(value.attr)
                if target_method is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr != value.attr
                    ):
                        candidates = bindings.setdefault(target.attr, [])
                        if target_method not in candidates:
                            candidates.append(target_method)
    cache[cls.qualname] = bindings
    return bindings


class _Extractor:
    """Direct effects, call edges, constructions of one function body."""

    def __init__(
        self,
        project: Project,
        record: FunctionEffects,
        mutable_globals: Dict[str, ast.stmt],
        registries: Dict[str, List[ClassInfo]],
        layer_map: LayerMap,
        bound_cache: Optional[Dict[str, Dict[str, List[FunctionInfo]]]] = None,
    ) -> None:
        self.project = project
        self.record = record
        self.function = record.function
        self.module = record.function.module
        self.cls = record.function.cls
        self.mutable_globals = mutable_globals
        self.registries = registries
        self.layer_map = layer_map
        #: class qualname -> attr -> methods rebound onto the instance
        #: (``self.send_gossip = self._send_gossip`` in ``__init__``).
        self.bound_cache = bound_cache if bound_cache is not None else {}
        self.locals, self.declared_global = _local_bindings(
            record.function.node
        )
        #: local names bound to a registry subscript (``cls = REG[name]``).
        self.registry_locals: Dict[str, List[ClassInfo]] = {}
        for node in ast.walk(record.function.node):
            if not isinstance(node, ast.Assign):
                continue
            classes = self._registry_subscript(node.value)
            if classes is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.registry_locals[target.id] = classes

    def _registry_subscript(
        self, expr: ast.expr
    ) -> Optional[List[ClassInfo]]:
        """``REG[key]`` / ``REG.get(key)`` for a known class registry."""
        if isinstance(expr, ast.Subscript):
            root = expr.value
        elif (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "get"
        ):
            root = expr.func.value
        else:
            return None
        if isinstance(root, ast.Name) and root.id not in self.locals:
            return self.registries.get(root.id)
        return None

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._walk(self.function.node, in_loop=False)
        self._assign_stream_consumers()

    def _walk(self, node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop or isinstance(
                node,
                (
                    ast.For, ast.AsyncFor, ast.While, ast.comprehension,
                    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
                ),
            )
            self._visit(child, child_in_loop)
            self._walk(child, child_in_loop)

    def _visit(self, node: ast.AST, in_loop: bool) -> None:
        if isinstance(node, ast.Attribute):
            self._visit_attribute(node)
        elif isinstance(node, ast.Call):
            self._visit_call(node, in_loop)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._visit_assignment(node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._global_target(target, node)

    # ------------------------------------------------------------------
    def _add(self, effect: str, node: ast.AST) -> None:
        self.record.direct.add(effect)
        self.record.sites.setdefault(effect, node)

    def _visit_attribute(self, node: ast.Attribute) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        if node.attr == "now" and _is_simish(dotted_parts(node.value)):
            self._add(SIM_TIME, node)
        elif node.attr in _ENGINE_ATTRS:
            self._add(SIM_ENGINE, node)
        # A @property read runs the getter: reading ``self.elapsed`` on a
        # class whose ``elapsed`` getter touches the clock inherits the
        # getter's effects exactly like a call would.
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.cls is not None
        ):
            method = self.cls.mro_method(node.attr)
            if method is not None and _is_property(method):
                self.record.callees.append((method.qualname, False))

    def _visit_call(self, node: ast.Call, in_loop: bool) -> None:
        func = node.func
        receiver = _receiver_parts(func)
        attr = func.attr if isinstance(func, ast.Attribute) else None

        if attr in _SCHEDULE_ATTRS and _is_simish(receiver):
            self._add(SIM_SCHEDULE, node)
        if attr in _NET_SEND_ATTRS:
            self._add(NET_SEND, node)
        if attr in _RNG_DRAW_METHODS and _is_rngish(receiver):
            self._add(RNG_DRAW, node)
        if (
            attr in _STREAM_METHODS
            and _is_streamsish(receiver)
            and node.args
        ):
            name = _literal_stream_name(node.args[0])
            if name is not None and attr == "substreams":
                name = f"{name}[*"
            self.record.stream_requests.append(
                StreamRequest(name, node, self.function, self.module.name)
            )
        if attr in MUTATING_METHODS and isinstance(func, ast.Attribute):
            root = func.value
            if (
                isinstance(root, ast.Name)
                and self._is_module_global(root.id)
            ):
                self._add(
                    f"{GLOBAL_MUT_PREFIX}{self.module.name}.{root.id}", node
                )

        resolved = self._resolve_callee(node)
        if isinstance(resolved, FunctionInfo):
            self.record.callees.append((resolved.qualname, in_loop))
        elif isinstance(resolved, ClassInfo):
            self._construct(resolved, node, in_loop)
        else:
            bound = self._instance_bound_targets(node)
            if bound:
                for method in bound:
                    self.record.callees.append((method.qualname, in_loop))
                return
            registry_classes = None
            if isinstance(func, ast.Name):
                registry_classes = self.registry_locals.get(func.id)
            if registry_classes is None:
                registry_classes = self._registry_subscript(func)
            if registry_classes is not None:
                for cls in registry_classes:
                    self._construct(cls, node, in_loop)
            else:
                dotted = self.module.resolve_call(node)
                if dotted in _WALL_CLOCK_CALLS:
                    self._add(WALL_CLOCK, node)
                elif dotted in _BLOCKING_CALLS:
                    self._add(BLOCKING, node)

    def _construct(
        self, cls: ClassInfo, node: ast.Call, in_loop: bool
    ) -> None:
        self.record.constructions.append(
            Construction(cls, node, in_loop, self.function)
        )
        if self.layer_map.is_engine_module(cls.module.name):
            self._add(SIM_ENGINE, node)
        init = cls.mro_method("__init__")
        if init is not None:
            self.record.callees.append((init.qualname, in_loop))

    def _visit_assignment(self, node: ast.stmt) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]  # type: ignore[attr-defined]
        )
        for target in targets:
            self._global_target(target, node)

    def _global_target(self, target: ast.expr, node: ast.AST) -> None:
        """Record mutation of a module-level mutable binding."""
        if isinstance(target, ast.Name):
            if (
                target.id in self.declared_global
                and target.id in self.mutable_globals
            ):
                self._add(
                    f"{GLOBAL_MUT_PREFIX}{self.module.name}.{target.id}", node
                )
            return
        root = target
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name) and self._is_module_global(root.id):
            self._add(
                f"{GLOBAL_MUT_PREFIX}{self.module.name}.{root.id}", node
            )

    def _is_module_global(self, name: str) -> bool:
        return name in self.mutable_globals and name not in self.locals

    # ------------------------------------------------------------------
    def _instance_bound_targets(
        self, node: ast.Call
    ) -> Optional[List[FunctionInfo]]:
        """Methods a ``self.X(...)`` call can dispatch to when ``X`` is an
        instance attribute rebound to one of the class's own methods
        (``self.send_gossip = self._send_gossip`` in ``__init__`` — the
        setup-time method-binding idiom).  All candidate bindings are
        returned: a conditional rebind contributes every branch."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.cls is not None
        ):
            return None
        return _instance_bindings(self.cls, self.bound_cache).get(func.attr)

    def _resolve_callee(self, node: ast.Call):
        return resolve_call_target(
            self.project, self.module, self.cls, node
        )

    def _assign_stream_consumers(self) -> None:
        """Innermost resolved call wrapping a stream request names its
        consumer module (``Dispatcher(..., streams.stream("cache[0]"))``
        hands the stream to ``repro.pubsub.dispatcher``)."""
        if not self.record.stream_requests:
            return
        by_node = {req.node: req for req in self.record.stream_requests}
        # ast.walk is breadth-first: outer calls precede inner ones, so a
        # later (deeper) match overwrites an earlier (outer) one.
        for node in ast.walk(self.function.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_callee(node)
            if resolved is None:
                continue
            module_name = resolved.module.name
            for arg in (*node.args, *(kw.value for kw in node.keywords)):
                for sub in ast.walk(arg):
                    request = by_node.get(sub)
                    if request is not None:
                        request.consumer = module_name


# ----------------------------------------------------------------------
# Fixpoint propagation
# ----------------------------------------------------------------------


def _propagates_sim(layer_map: LayerMap, callee: FunctionInfo) -> bool:
    """May ``sim-*`` effects flow out of ``callee`` into its callers?"""
    config = layer_map.config
    names = [callee.qualname, callee.name]
    if callee.cls is not None:
        names.append(f"{callee.cls.name}.{callee.name}")
    if config.is_touchpoint(*names):
        return False
    layer = layer_map.layer_of_module(callee.module.name)
    if layer is not None and layer not in set(config.confined):
        # A mapped, unconfined layer (engine itself, transport, scenarios)
        # is licensed to touch the engine; calling into it is not coupling.
        return False
    return True


def infer_effects(project: Project, layer_map: LayerMap) -> EffectMap:
    """Extract direct effects and run the call-graph fixpoint."""
    effect_map = EffectMap(project, layer_map)
    globals_cache: Dict[str, Dict[str, ast.stmt]] = {}
    registry_cache: Dict[str, Dict[str, List[ClassInfo]]] = {}
    bound_cache: Dict[str, Dict[str, List[FunctionInfo]]] = {}

    def functions() -> Iterable[FunctionInfo]:
        for module in project.modules.values():
            yield from module.functions.values()
            for cls in module.classes.values():
                yield from cls.methods.values()

    for function in functions():
        record = FunctionEffects(function)
        module = function.module
        mutable_globals = globals_cache.get(module.name)
        if mutable_globals is None:
            mutable_globals = module_mutable_globals(module)
            globals_cache[module.name] = mutable_globals
        registries = registry_cache.get(module.name)
        if registries is None:
            registries = module_class_registries(module, project)
            registry_cache[module.name] = registries
        _Extractor(
            project, record, mutable_globals, registries, layer_map,
            bound_cache,
        ).run()
        for request in record.stream_requests:
            name = request.name if request.name is not None else "?"
            record.direct.add(f"{STREAM_PREFIX}{name}@{module.name}")
            record.sites.setdefault(
                f"{STREAM_PREFIX}{name}@{module.name}", request.node
            )
        record.effects = set(record.direct)
        effect_map.functions[function.qualname] = record

    sim_barrier: Dict[str, bool] = {}
    for qualname, record in effect_map.functions.items():
        sim_barrier[qualname] = _propagates_sim(layer_map, record.function)

    changed = True
    while changed:
        changed = False
        for record in effect_map.functions.values():
            for callee, _in_loop in record.callees:
                callee_record = effect_map.functions.get(callee)
                if callee_record is None:
                    continue
                inherited = callee_record.effects
                if not sim_barrier[callee]:
                    inherited = inherited - SIM_EFFECTS
                new = inherited - record.effects
                if new:
                    record.effects |= new
                    for effect in new:
                        record.via.setdefault(effect, callee)
                    changed = True
    return effect_map


# ----------------------------------------------------------------------
# Per-node / per-event classes
# ----------------------------------------------------------------------


def per_node_classes(
    project: Project,
    effect_map: EffectMap,
    in_scope: Optional[Callable[[str], bool]] = None,
    factory_scope: Optional[Callable[[str], bool]] = None,
) -> Dict[str, str]:
    """``class qualname -> why it is per-node`` (seeds + fixpoint).

    Seeds: constructed inside a loop or comprehension, or constructed by
    a module-level factory that is itself called inside a loop
    (``create_recovery`` per node).  Closure: constructed by a method a
    per-node class inherits or defines — ``Dispatcher.publish`` building
    an ``Event`` makes ``Event`` per-event, and
    ``RecoveryAlgorithm.__init__`` building the gossip ``PeriodicTimer``
    makes the timer per-node once any concrete algorithm is.

    ``in_scope`` limits where *seeds* may come from (by the constructing
    function's module name).  Loops in layer-mapped modules express
    per-node/per-event cardinality; loops in driver scripts and
    benchmarks sweep whole-simulation configurations, and must not make
    one-per-run engine objects look per-node.  ``factory_scope``
    additionally limits which *factories* may seed when called in a
    loop: a factory living in the driver layer (``run_scenario``)
    constructs whole simulations, so a sweep calling it repeatedly says
    nothing about per-node cardinality -- while the same loop over a
    protocol-layer factory (``create_recovery``) is exactly the
    one-object-per-node signal the heuristic wants.  The closure is not
    filtered: whatever a genuinely per-node class constructs is per-node
    wherever it lives.
    """
    if in_scope is None:
        in_scope = lambda module_name: True  # noqa: E731
    if factory_scope is None:
        factory_scope = in_scope
    called_in_loop: Set[str] = set()
    for record in effect_map.functions.values():
        if not in_scope(record.function.module.name):
            continue
        for callee, in_loop in record.callees:
            if in_loop:
                called_in_loop.add(callee)

    reasons: Dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        # Methods *inherited* by a per-node class run per-node too.
        context: Set[str] = set()
        for qualname in reasons:
            cls = project.classes.get(qualname)
            if cls is not None:
                context.update(a.qualname for a in cls.mro())
        for construction in effect_map.all_constructions():
            if construction.cls.qualname in reasons:
                continue
            function = construction.function
            seedable = in_scope(function.module.name)
            reason: Optional[str] = None
            if construction.in_loop and seedable:
                reason = f"constructed in a loop in {function.qualname}"
            elif (
                function.cls is None
                and function.qualname in called_in_loop
                and factory_scope(function.module.name)
            ):
                reason = (
                    f"constructed by {function.qualname}(), itself called "
                    "in a loop"
                )
            elif function.cls is not None and function.cls.qualname in context:
                reason = f"constructed by per-node {function.qualname}"
            if reason is not None:
                reasons[construction.cls.qualname] = reason
                changed = True
    return reasons
