"""The whole-program rule family, REP100–REP105.

Where REP001–REP007 police what one file *says*, these rules police the
cross-module contracts the hot paths of PR 2 lean on:

========  ==============================================================
REP100    memo backing state mutated without reaching ``_invalidate()``
REP101    shared forward ``Message`` mutated after send/schedule escape
REP102    scheduled callback unresolvable or called with the wrong arity
REP103    RNG constructed outside ``repro/sim/rng.py``
REP104    non-module-level callable submitted to an experiment executor
REP105    recovery subclass skips ``super().__init__`` / bends hook arity
========  ==============================================================

Each rule is a singleton with ``code``/``name``/``summary`` (mirroring the
per-file family) and a ``run(project, add)`` hook; ``add(module, node, code,
message)`` records one finding.  Findings then flow through the exact same
per-path configuration and inline-suppression machinery as REP0xx.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Set, Tuple

from .dataflow import InvalidatePaths, mutated_self_attrs, self_attr_reads
from .model import (
    ClassInfo,
    FunctionInfo,
    FunctionNode,
    ModuleInfo,
    Project,
    dotted_parts,
)

__all__ = ["AnalysisRule", "ANALYSIS_RULES", "analysis_codes",
           "analysis_rules_by_code"]

AddFn = Callable[[ModuleInfo, ast.AST, str, str], None]

#: Attribute names whose call hands a value to the network layer.
_SEND_ATTRS = frozenset({"send", "send_oob", "transmit", "send_gossip"})
#: Attribute names whose call hands a value to the simulation calendar.
_SCHEDULE_ATTRS = frozenset(
    {"schedule", "schedule_at", "schedule_call", "schedule_call_at"}
)
#: Constructors/factories whose result is an experiment executor or pool.
_EXECUTOR_FACTORIES = frozenset(
    {"ProcessExecutor", "SerialExecutor", "get_executor", "ProcessPoolExecutor"}
)
#: Methods construction-state initializers exempt from REP100.
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__setstate__"})

#: Engine-facing hooks of RecoveryAlgorithm and the positional argument
#: count the engine/dispatcher calls them with (``self`` excluded).
_RECOVERY_HOOKS: Dict[str, int] = {
    "gossip_round": 0,
    "handle_gossip": 2,
    "on_event_received": 2,
    "on_event_published": 1,
    "handle_oob_request": 2,
    "start": 0,
    "stop": 0,
}
_RECOVERY_BASE = "RecoveryAlgorithm"


def _walk_functions(module: ModuleInfo):
    """Yield (function-ish node, enclosing ClassInfo or None)."""
    for fn in module.functions.values():
        yield fn.node, None
    for cls in module.classes.values():
        for method in cls.methods.values():
            yield method.node, cls


def _pos(node: ast.AST) -> Tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


class AnalysisRule:
    """Base class for whole-program rules."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def run(self, project: Project, add: AddFn) -> None:
        raise NotImplementedError


class MemoInvalidateRule(AnalysisRule):
    """REP100: every mutation of memo backing state reaches ``_invalidate``."""

    code = "REP100"
    name = "memo-invalidate"
    summary = (
        "method mutates the backing state of a memoized class without "
        "calling _invalidate() on every path; the memo serves stale results"
    )

    def run(self, project: Project, add: AddFn) -> None:
        for cls in project.classes.values():
            self._check_class(cls, add)

    # -- protocol discovery --------------------------------------------
    def _check_class(self, cls: ClassInfo, add: AddFn) -> None:
        invalidate = cls.methods.get("_invalidate") or cls.mro_method("_invalidate")
        if invalidate is None:
            return
        memo_attrs = mutated_self_attrs(invalidate.node)
        if not memo_attrs:
            return
        # Backing state: what the memo-writing readers compute from.
        all_methods: Dict[str, FunctionInfo] = {}
        for ancestor in reversed(cls.mro()):
            all_methods.update(ancestor.methods)
        backing: Set[str] = set()
        for method in all_methods.values():
            if method.name == "_invalidate" or method.name in _CONSTRUCTORS:
                continue
            if mutated_self_attrs(method.node) & memo_attrs:
                backing |= self_attr_reads(method.node) - memo_attrs
        if not backing:
            return
        guarantees = self._guaranteeing_methods(all_methods)
        for method in cls.methods.values():
            if method.name in _CONSTRUCTORS or method.name == "_invalidate":
                continue
            paths = InvalidatePaths(
                method.node, backing, guarantees
            ).run()
            if paths.violating:
                site = paths.first_mutation or method.node
                attrs = ", ".join(sorted(mutated_self_attrs(method.node) & backing))
                add(
                    cls.module,
                    site,
                    self.code,
                    f"{cls.name}.{method.name}() mutates memo backing state "
                    f"({attrs or 'via alias'}) on a path that never calls "
                    f"_invalidate(); the "
                    f"{'/'.join(sorted(memo_attrs))} memo goes stale",
                )

    @staticmethod
    def _guaranteeing_methods(methods: Dict[str, FunctionInfo]) -> Set[str]:
        """Names of methods guaranteed to invalidate on every path."""
        guarantees: Set[str] = {"_invalidate"}
        changed = True
        while changed:
            changed = False
            for method in methods.values():
                if method.name in guarantees:
                    continue
                paths = InvalidatePaths(method.node, set(), guarantees).run()
                if paths.always_invalidates:
                    guarantees.add(method.name)
                    changed = True
        return guarantees


class MessageAliasRule(AnalysisRule):
    """REP101: no mutation of a ``Message`` after it escaped into a send."""

    code = "REP101"
    name = "post-send-message-mutation"
    summary = (
        "Message mutated after being handed to a send/schedule call; the "
        "network shares one envelope, so the mutation races the delivery"
    )

    def run(self, project: Project, add: AddFn) -> None:
        for module in project.modules.values():
            for func, _cls in _walk_functions(module):
                self._check_function(module, func, add)

    @staticmethod
    def _root_name(node: ast.expr) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _check_function(self, module: ModuleInfo, func: ast.AST, add: AddFn) -> None:
        # Local names bound to a Message(...) construction, and local
        # aliases of bound send methods (``network_send = self.network.send``).
        send_aliases: Set[str] = set()
        events: List[Tuple[Tuple[int, int], str, str, ast.AST]] = []
        message_locals: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Call):
                    resolved = module.resolve_call(value)
                    if resolved and resolved.split(".")[-1] == "Message":
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                message_locals.add(target.id)
                                events.append(
                                    (_pos(node), "construct", target.id, node)
                                )
                else:
                    parts = dotted_parts(value)
                    if parts and parts[-1] in _SEND_ATTRS:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                send_aliases.add(target.id)
        if not message_locals:
            return
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                func_expr = node.func
                is_escape = (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in (_SEND_ATTRS | _SCHEDULE_ATTRS)
                ) or (
                    isinstance(func_expr, ast.Name)
                    and func_expr.id in send_aliases
                )
                if is_escape:
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in message_locals:
                            events.append((_pos(node), "escape", arg.id, node))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root = self._root_name(target)
                    if root is not None and root in message_locals:
                        events.append((_pos(node), "mutate", root, node))
        events.sort(key=lambda e: e[0])
        escaped: Set[str] = set()
        for _pos_, kind, name, node in events:
            if kind == "construct":
                escaped.discard(name)
            elif kind == "escape":
                escaped.add(name)
            elif kind == "mutate" and name in escaped:
                add(
                    module,
                    node,
                    self.code,
                    f"'{name}' was handed to a send/schedule call and is "
                    "mutated afterwards; the network holds a reference to the "
                    "same envelope — mutate before sending, or send a copy",
                )


class ScheduleCallbackRule(AnalysisRule):
    """REP102: scheduled callbacks resolve and arities line up."""

    code = "REP102"
    name = "schedule-callback-arity"
    summary = (
        "callback handed to schedule/schedule_call with an argument count "
        "its signature cannot accept; it will raise only when it fires"
    )

    def run(self, project: Project, add: AddFn) -> None:
        for module in project.modules.values():
            for func, cls in _walk_functions(module):
                local_defs = {
                    sub.name: sub
                    for sub in ast.walk(func)
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and sub is not func
                }
                for node in ast.walk(func):
                    if isinstance(node, ast.Call):
                        self._check_call(
                            project, module, cls, local_defs, node, add
                        )

    @staticmethod
    def _lambda_arity(node: ast.Lambda) -> Tuple[int, Optional[int]]:
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        max_args: Optional[int] = None if args.vararg else len(positional)
        return len(positional) - len(args.defaults), max_args

    def _resolve(
        self,
        project: Project,
        module: ModuleInfo,
        cls: Optional[ClassInfo],
        local_defs: Dict[str, FunctionNode],
        callback: ast.expr,
    ) -> Optional[Tuple[str, int, Optional[int]]]:
        """(label, min_args, max_args) for a resolvable callback."""
        if isinstance(callback, ast.Lambda):
            low, high = self._lambda_arity(callback)
            return "<lambda>", low, high
        if (
            isinstance(callback, ast.Attribute)
            and isinstance(callback.value, ast.Name)
            and callback.value.id == "self"
            and cls is not None
        ):
            method = cls.mro_method(callback.attr)
            if method is None:
                return None
            low, high = method.arity()
            return f"{cls.name}.{callback.attr}", low, high
        if isinstance(callback, ast.Name):
            local = local_defs.get(callback.id)
            if local is not None:
                info = FunctionInfo(callback.id, callback.id, local, module)
                low, high = info.arity()
                return callback.id, low, high
            target = project.resolve_name(module, [callback.id])
            if isinstance(target, FunctionInfo):
                low, high = target.arity()
                return target.qualname, low, high
        return None

    def _check_call(
        self,
        project: Project,
        module: ModuleInfo,
        cls: Optional[ClassInfo],
        local_defs: Dict[str, FunctionNode],
        node: ast.Call,
        add: AddFn,
    ) -> None:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if attr not in _SCHEDULE_ATTRS or node.keywords or len(node.args) < 2:
            return
        resolved = self._resolve(project, module, cls, local_defs, node.args[1])
        if resolved is None:
            return
        label, low, high = resolved
        given = len(node.args) - 2
        if given < low or (high is not None and given > high):
            expected = (
                f"{low}+" if high is None
                else str(low) if low == high
                else f"{low}..{high}"
            )
            add(
                module,
                node,
                self.code,
                f"{attr}() passes {given} argument(s) to {label}, which "
                f"takes {expected}; the mismatch raises only when the "
                "calendar fires the callback",
            )


class RngOriginRule(AnalysisRule):
    """REP103: RNGs are constructed in ``repro/sim/rng.py`` and nowhere else."""

    code = "REP103"
    name = "rng-origin"
    summary = (
        "random.Random / numpy RNG constructed outside repro/sim/rng.py; "
        "derive named streams from RandomStreams so seeds stay centralized"
    )

    def run(self, project: Project, add: AddFn) -> None:
        for module in project.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = module.resolve_call(node)
                if resolved is None:
                    continue
                if resolved == "random.Random" or resolved.startswith(
                    "numpy.random."
                ):
                    add(
                        module,
                        node,
                        self.code,
                        f"{resolved}(...) constructed outside repro/sim/rng.py; "
                        "every stream must be derived from a RandomStreams "
                        "master seed (stream()/substreams())",
                    )


class ExecutorPicklableRule(AnalysisRule):
    """REP104: executor submissions are module-level, closure-free callables."""

    code = "REP104"
    name = "executor-picklable"
    summary = (
        "lambda / nested function / bound method submitted to an experiment "
        "executor; worker processes can only import module-level callables"
    )

    def run(self, project: Project, add: AddFn) -> None:
        for module in project.modules.values():
            for func, _cls in _walk_functions(module):
                self._check_function(project, module, func, add)

    @staticmethod
    def _executor_locals(module: ModuleInfo, func: ast.AST) -> Set[str]:
        names: Set[str] = set()

        def factory(call: ast.expr) -> bool:
            if not isinstance(call, ast.Call):
                return False
            resolved = module.resolve_call(call)
            return bool(
                resolved and resolved.split(".")[-1] in _EXECUTOR_FACTORIES
            )

        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and factory(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.withitem) and factory(node.context_expr):
                if isinstance(node.optional_vars, ast.Name):
                    names.add(node.optional_vars.id)
        return names

    def _check_function(
        self, project: Project, module: ModuleInfo, func: ast.AST, add: AddFn
    ) -> None:
        executor_locals = self._executor_locals(module, func)
        local_defs = {
            sub.name
            for sub in ast.walk(func)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not func
        }
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            func_expr = node.func
            if not (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in ("map", "submit")
                and node.args
            ):
                continue
            receiver = func_expr.value
            is_executor = (
                isinstance(receiver, ast.Name) and receiver.id in executor_locals
            )
            if not is_executor and isinstance(receiver, ast.Call):
                resolved = module.resolve_call(receiver)
                is_executor = bool(
                    resolved and resolved.split(".")[-1] in _EXECUTOR_FACTORIES
                )
            if not is_executor:
                continue
            submitted = node.args[0]
            problem = self._problem(submitted, local_defs)
            if problem is not None:
                add(
                    module,
                    submitted,
                    self.code,
                    f"{problem} submitted to an experiment executor; "
                    "ProcessExecutor pickles submissions, so they must be "
                    "module-level, closure-free callables",
                )

    @classmethod
    def _problem(
        cls, submitted: ast.expr, local_defs: Set[str]
    ) -> Optional[str]:
        if isinstance(submitted, ast.Lambda):
            return "lambda"
        if isinstance(submitted, ast.Name) and submitted.id in local_defs:
            return f"nested function '{submitted.id}'"
        if (
            isinstance(submitted, ast.Attribute)
            and isinstance(submitted.value, ast.Name)
            and submitted.value.id == "self"
        ):
            return f"bound method 'self.{submitted.attr}'"
        # ``functools.partial`` pickles by reference to the *wrapped*
        # callable, so a partial of a module-level function is fine and
        # must not be flagged; recurse so a partial of a lambda / nested
        # function / bound method is still caught (nested partials too).
        if isinstance(submitted, ast.Call) and cls._is_partial(submitted.func):
            target = submitted.args[0] if submitted.args else None
            if target is None:
                for keyword in submitted.keywords:
                    if keyword.arg == "func":
                        target = keyword.value
                        break
            if target is None:
                return None
            inner = cls._problem(target, local_defs)
            return None if inner is None else f"functools.partial of a {inner}"
        return None

    @staticmethod
    def _is_partial(func_expr: ast.expr) -> bool:
        if isinstance(func_expr, ast.Name):
            return func_expr.id in ("partial", "partialmethod")
        return (
            isinstance(func_expr, ast.Attribute)
            and func_expr.attr in ("partial", "partialmethod")
        )


class RecoverySubclassRule(AnalysisRule):
    """REP105: recovery subclasses keep the base contract."""

    code = "REP105"
    name = "recovery-subclass-contract"
    summary = (
        "recovery-algorithm subclass skips super().__init__ (timer/stats "
        "never wired) or overrides an engine-facing hook with an "
        "incompatible signature"
    )

    def run(self, project: Project, add: AddFn) -> None:
        for cls in project.classes.values():
            ancestry = cls.ancestry_names() - {cls.qualname}
            if not any(
                name == _RECOVERY_BASE or name.endswith(f".{_RECOVERY_BASE}")
                for name in ancestry
            ):
                continue
            self._check_init(cls, add)
            self._check_hooks(cls, add)

    def _check_init(self, cls: ClassInfo, add: AddFn) -> None:
        init = cls.methods.get("__init__")
        if init is None:
            return
        for node in ast.walk(init.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__init__"
            ):
                base = node.func.value
                if isinstance(base, ast.Call) and isinstance(
                    base.func, ast.Name
                ) and base.func.id == "super":
                    return
                if dotted_parts(base) is not None:  # Base.__init__(self, ...)
                    return
        add(
            cls.module,
            init.node,
            self.code,
            f"{cls.name}.__init__ never calls super().__init__; the gossip "
            "timer, stats, and dispatcher attachment are wired there",
        )

    def _check_hooks(self, cls: ClassInfo, add: AddFn) -> None:
        for hook, engine_args in _RECOVERY_HOOKS.items():
            method = cls.methods.get(hook)
            if method is None:
                continue
            low, high = method.arity()
            if engine_args < low or (high is not None and engine_args > high):
                add(
                    cls.module,
                    method.node,
                    self.code,
                    f"{cls.name}.{hook}() takes {low}"
                    f"{'' if high == low else '..' + ('*' if high is None else str(high))}"
                    f" argument(s) but the engine calls it with {engine_args}; "
                    "keep the base signature",
                )


ANALYSIS_RULES: List[AnalysisRule] = [
    MemoInvalidateRule(),
    MessageAliasRule(),
    ScheduleCallbackRule(),
    RngOriginRule(),
    ExecutorPicklableRule(),
    RecoverySubclassRule(),
]


def analysis_codes() -> List[str]:
    return [rule.code for rule in ANALYSIS_RULES]


def analysis_rules_by_code() -> Dict[str, AnalysisRule]:
    return {rule.code: rule for rule in ANALYSIS_RULES}
