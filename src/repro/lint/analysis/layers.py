"""The declared layer map: module→layer assignment and import edges.

The architecture the analyzer enforces is *declared*, not inferred: the
``[tool.repro-lint.layers]`` block of ``pyproject.toml`` names the layers
bottom-to-top (``sim`` → ``network`` → ``protocol`` → ``scenarios``) and
maps each to the module-name prefixes it owns.  This module resolves every
analyzed module to its layer and extracts the import edges between layers,
so that:

* REP200 can flag **upward** imports (a lower layer importing a higher
  one — the engine must never know about the protocol built on it), and
* ``repro-lint --arch-report`` can show reviewers the layer graph the
  checker actually enforces.

Imports under an ``if TYPE_CHECKING:`` guard are annotation-only and are
excluded from the edge set (they impose no runtime coupling).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..config import LayersConfig
from .model import ModuleInfo, Project

__all__ = ["ImportEdge", "LayerMap", "build_layer_map"]


class ImportEdge:
    """One module-level import: ``source`` imports ``target``."""

    __slots__ = ("source", "target", "node", "source_layer", "target_layer")

    def __init__(
        self,
        source: ModuleInfo,
        target: str,
        node: ast.stmt,
        source_layer: Optional[str],
        target_layer: Optional[str],
    ) -> None:
        self.source = source
        self.target = target
        self.node = node
        self.source_layer = source_layer
        self.target_layer = target_layer


class LayerMap:
    """Every analyzed module resolved against the declared layer config."""

    def __init__(self, config: LayersConfig, project: Project) -> None:
        self.config = config
        self.project = project
        #: module name -> layer name (only mapped modules appear).
        self.assignment: Dict[str, str] = {}
        for name in project.modules:
            layer = config.layer_of(name)
            if layer is not None and layer in config.order:
                self.assignment[name] = layer
        self.edges: List[ImportEdge] = []
        for module in project.modules.values():
            self.edges.extend(self._module_edges(module))

    # ------------------------------------------------------------------
    def layer_of_module(self, module_name: str) -> Optional[str]:
        layer = self.config.layer_of(module_name)
        return layer if layer in self.config.order else None

    def is_confined(self, module_name: str) -> bool:
        """True when ``module_name`` lives in a touchpoint-confined layer."""
        return self.layer_of_module(module_name) in set(self.config.confined)

    def is_engine_module(self, module_name: str) -> bool:
        """True when ``module_name`` belongs to the bottom (engine) layer."""
        if not self.config.order:
            return False
        return self.layer_of_module(module_name) == self.config.order[0]

    def violations(self) -> Iterator[ImportEdge]:
        """Edges importing *upward*: a lower layer reaching a higher one."""
        for edge in self.edges:
            if edge.source_layer is None or edge.target_layer is None:
                continue
            if self.config.index_of(edge.target_layer) > self.config.index_of(
                edge.source_layer
            ):
                yield edge

    def modules_by_layer(self) -> Dict[str, List[str]]:
        grouped: Dict[str, List[str]] = {layer: [] for layer in self.config.order}
        for name, layer in sorted(self.assignment.items()):
            grouped[layer].append(name)
        return grouped

    def edge_counts(self) -> Dict[Tuple[str, str], int]:
        """``(source_layer, target_layer) -> #imports`` over mapped modules."""
        counts: Dict[Tuple[str, str], int] = {}
        for edge in self.edges:
            if edge.source_layer is None or edge.target_layer is None:
                continue
            key = (edge.source_layer, edge.target_layer)
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def _module_edges(self, module: ModuleInfo) -> List[ImportEdge]:
        source_layer = self.layer_of_module(module.name)
        edges: List[ImportEdge] = []
        for node in _runtime_imports(module.tree):
            for target in self._import_targets(module, node):
                if target == module.name:
                    continue
                edges.append(
                    ImportEdge(
                        module,
                        target,
                        node,
                        source_layer,
                        self.layer_of_module(target),
                    )
                )
        return edges

    def _import_targets(
        self, module: ModuleInfo, node: ast.stmt
    ) -> List[str]:
        """The *module* names one import statement binds."""
        targets: List[str] = []
        if isinstance(node, ast.Import):
            targets.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = module._package(node.level)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if not base:
                return targets
            for alias in node.names:
                # ``from pkg import sub`` may bind a submodule; prefer the
                # most specific analyzed module, falling back to the package.
                candidate = f"{base}.{alias.name}"
                if candidate in self.project.modules:
                    targets.append(candidate)
                else:
                    targets.append(base)
        return targets


def _runtime_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Import statements outside ``if TYPE_CHECKING:`` guards."""

    def walk(body: List[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                yield stmt
            elif isinstance(stmt, ast.If) and _is_type_checking(stmt.test):
                yield from walk(stmt.orelse)
            elif isinstance(
                stmt,
                (
                    ast.If,
                    ast.Try,
                    ast.With,
                    ast.For,
                    ast.While,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                ),
            ):
                for child_body in _bodies(stmt):
                    yield from walk(child_body)

    yield from walk(tree.body)


def _bodies(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    for field in ("body", "orelse", "finalbody"):
        body = getattr(stmt, field, None)
        if body:
            yield body
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def build_layer_map(config: LayersConfig, project: Project) -> LayerMap:
    return LayerMap(config, project)
