"""Light intraprocedural dataflow over one function body.

Three facts power the REP100/REP101 checks, and all three are computed here:

* **Self-attribute effects** — which ``self.<attr>`` slots a method reads
  and which it mutates, *including mutations through local aliases*
  (``directions = self._directions.get(p); directions.discard(d)`` counts
  as a mutation of ``_directions``).
* **Invalidate-path analysis** — a tiny abstract interpreter over the
  statement tree tracking, per execution path, whether backing state was
  mutated and whether ``_invalidate`` was (or is guaranteed to be) called.
  Branches fork the state set; loops are approximated as zero-or-one
  executions; ``return``/``raise`` terminate a path.
* **Escape tracking** — the statement position at which a local value is
  handed to a send/schedule call, so REP101 can flag mutations that happen
  *after* the value escaped.

Everything is deliberately conservative-but-shallow: false positives are
possible (that is what inline suppression is for), and nested function
bodies are not entered.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

__all__ = [
    "MUTATING_METHODS",
    "AliasMap",
    "build_alias_map",
    "self_attr_reads",
    "mutated_self_attrs",
    "mutation_nodes",
    "InvalidatePaths",
]

#: Method names that mutate their receiver in place (dict/set/list/deque).
MUTATING_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popitem", "remove", "setdefault",
        "sort", "reverse", "update", "difference_update",
        "intersection_update", "symmetric_difference_update",
    }
)

#: Accessor methods whose return value aliases (part of) the receiver.
_ALIASING_ACCESSORS = frozenset(
    {"get", "setdefault", "pop", "items", "values", "keys"}
)

AliasMap = Dict[str, FrozenSet[str]]


def _self_attr_of(node: ast.expr) -> Optional[str]:
    """``self.X`` → ``"X"``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _alias_origins(node: ast.expr, aliases: AliasMap) -> FrozenSet[str]:
    """The self-attributes a value expression aliases, if any.

    Recognized shapes (``E`` standing for a recognized expression):
    ``self.A``, ``E[k]``, ``E.get(...)/setdefault(...)/pop(...)/items()/
    values()/keys()``, and plain local names that are themselves aliases.
    """
    attr = _self_attr_of(node)
    if attr is not None:
        return frozenset((attr,))
    if isinstance(node, ast.Name):
        return aliases.get(node.id, frozenset())
    if isinstance(node, ast.Subscript):
        return _alias_origins(node.value, aliases)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _ALIASING_ACCESSORS:
            return _alias_origins(func.value, aliases)
    return frozenset()


def _bind_targets(
    targets: Sequence[ast.expr], origins: FrozenSet[str], aliases: AliasMap
) -> None:
    for target in targets:
        if isinstance(target, ast.Name):
            if origins:
                aliases[target.id] = origins
            else:
                aliases.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            _bind_targets(target.elts, origins, aliases)


def build_alias_map(func: ast.AST) -> AliasMap:
    """Map local names to the ``self`` attributes they alias.

    Flow-insensitive fixpoint: chains like ``d = self._directions;
    x = d.get(k)`` converge in as many rounds as the chain is long.
    """
    aliases: AliasMap = {}
    for _ in range(8):
        before = dict(aliases)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                _bind_targets(
                    node.targets, _alias_origins(node.value, aliases), aliases
                )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                _bind_targets(
                    [node.target], _alias_origins(node.value, aliases), aliases
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                _bind_targets(
                    [node.target], _alias_origins(node.iter, aliases), aliases
                )
            elif isinstance(node, ast.withitem) and node.optional_vars:
                _bind_targets(
                    [node.optional_vars],
                    _alias_origins(node.context_expr, aliases),
                    aliases,
                )
        if aliases == before:
            break
    return aliases


def self_attr_reads(func: ast.AST) -> Set[str]:
    """Every ``self.X`` read (Load context) in the function body."""
    reads: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attr = _self_attr_of(node)
            if attr is not None:
                reads.add(attr)
    return reads


def _mutation_targets(node: ast.AST, aliases: AliasMap) -> FrozenSet[str]:
    """Self-attributes mutated by one statement-level AST node."""
    hit: Set[str] = set()

    def target_attrs(target: ast.expr) -> FrozenSet[str]:
        # self.A = ..., self.A[k] = ..., alias[k] = ..., alias.attr = ...
        attr = _self_attr_of(target)
        if attr is not None:
            return frozenset((attr,))
        if isinstance(target, ast.Subscript):
            return _alias_origins(target.value, aliases)
        if isinstance(target, ast.Attribute):
            return _alias_origins(target.value, aliases)
        if isinstance(target, (ast.Tuple, ast.List)):
            out: Set[str] = set()
            for element in target.elts:
                out |= target_attrs(element)
            return frozenset(out)
        return frozenset()

    if isinstance(node, ast.Assign):
        for target in node.targets:
            hit |= target_attrs(target)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if not (isinstance(node, ast.AnnAssign) and node.value is None):
            hit |= target_attrs(node.target)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = _self_attr_of(target)
            if attr is not None:
                hit.add(attr)
            elif isinstance(target, ast.Subscript):
                hit |= _alias_origins(target.value, aliases)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            hit |= _alias_origins(func.value, aliases)
    return frozenset(hit)


def mutation_nodes(
    func: ast.AST, aliases: AliasMap
) -> List[Tuple[ast.AST, FrozenSet[str]]]:
    """All (node, mutated-self-attrs) pairs in the body, in source order."""
    out: List[Tuple[ast.AST, FrozenSet[str]]] = []
    for node in ast.walk(func):
        attrs = _mutation_targets(node, aliases)
        if attrs:
            out.append((node, attrs))
    out.sort(key=lambda pair: (
        getattr(pair[0], "lineno", 0), getattr(pair[0], "col_offset", 0)
    ))
    return out


def mutated_self_attrs(func: ast.AST, aliases: Optional[AliasMap] = None) -> Set[str]:
    """Union of self-attributes the function mutates anywhere."""
    if aliases is None:
        aliases = build_alias_map(func)
    mutated: Set[str] = set()
    for _, attrs in mutation_nodes(func, aliases):
        mutated |= attrs
    return mutated


# ----------------------------------------------------------------------
# Invalidate-path analysis (REP100)
# ----------------------------------------------------------------------

#: One abstract path state: (mutated backing state?, invalidated?).
_State = Tuple[bool, bool]


class InvalidatePaths:
    """Per-path "mutated vs. invalidated" analysis of one method body.

    ``tracked`` is the set of backing attributes whose mutation requires
    invalidation; ``invalidating_names`` the method names (on ``self``)
    whose call guarantees invalidation on every path.  After :meth:`run`,
    :attr:`violating` is True iff some execution path mutates backing state
    and reaches an exit without invalidating, and :attr:`first_mutation`
    points at the offending mutation site.
    """

    def __init__(
        self,
        func: ast.AST,
        tracked: Set[str],
        invalidating_names: Set[str],
        aliases: Optional[AliasMap] = None,
    ) -> None:
        self.func = func
        self.tracked = tracked
        self.invalidating_names = invalidating_names
        self.aliases = aliases if aliases is not None else build_alias_map(func)
        self.exit_states: Set[_State] = set()
        self.first_mutation: Optional[ast.AST] = None

    # -- effects of a single statement/expression ----------------------
    def _effects(self, node: ast.AST, states: Set[_State]) -> Set[_State]:
        mutated = False
        invalidated = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in self.invalidating_names
                ):
                    invalidated = True
            attrs = _mutation_targets(sub, self.aliases)
            if attrs & self.tracked:
                mutated = True
                if self.first_mutation is None:
                    self.first_mutation = sub
        if not mutated and not invalidated:
            return states
        return {
            (m or mutated, i or invalidated) for (m, i) in states
        }

    # -- statement walk -------------------------------------------------
    def _stmts(self, body: Sequence[ast.stmt], states: Set[_State]) -> Set[_State]:
        for stmt in body:
            if not states:
                break
            states = self._stmt(stmt, states)
        return states

    def _stmt(self, stmt: ast.stmt, states: Set[_State]) -> Set[_State]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            states = self._effects(stmt, states)
            self.exit_states |= states
            return set()
        if isinstance(stmt, ast.If):
            states = self._effects(stmt.test, states)
            return self._stmts(stmt.body, set(states)) | self._stmts(
                stmt.orelse, set(states)
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            states = self._effects(stmt.iter, states)
            once = self._stmts(stmt.body, set(states))
            after = states | once
            return after | self._stmts(stmt.orelse, set(after))
        if isinstance(stmt, ast.While):
            states = self._effects(stmt.test, states)
            once = self._stmts(stmt.body, set(states))
            after = states | once
            return after | self._stmts(stmt.orelse, set(after))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                states = self._effects(item, states)
            return self._stmts(stmt.body, states)
        if isinstance(stmt, ast.Try):
            after_body = self._stmts(stmt.body, set(states))
            merged = states | after_body
            out = self._stmts(stmt.orelse, set(after_body)) or after_body
            for handler in stmt.handlers:
                out = out | self._stmts(handler.body, set(merged))
            if stmt.finalbody:
                out = self._stmts(stmt.finalbody, out)
            return out
        if isinstance(stmt, ast.Match):
            matched: Set[_State] = set()
            subject = self._effects(stmt.subject, states)
            for case in stmt.cases:
                matched |= self._stmts(case.body, set(subject))
            return matched | subject  # no case may match
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return states  # nested bodies are not entered
        return self._effects(stmt, states)

    def run(self) -> "InvalidatePaths":
        body = getattr(self.func, "body", [])
        states = self._stmts(body, {(False, False)})
        self.exit_states |= states  # falling off the end is an exit
        return self

    @property
    def violating(self) -> bool:
        return any(m and not i for (m, i) in self.exit_states)

    @property
    def always_invalidates(self) -> bool:
        """True iff every exit path has called an invalidating method."""
        return bool(self.exit_states) and all(i for (_, i) in self.exit_states)
