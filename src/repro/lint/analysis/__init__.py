"""Whole-program analysis for the REP100–REP105 rule family.

Layered below :mod:`repro.lint.cli`:

* :mod:`~repro.lint.analysis.model` — project symbol table: modules,
  import-alias resolution (absolute + relative), classes with linearized
  ancestry, functions with call arities, re-export chasing.
* :mod:`~repro.lint.analysis.dataflow` — intraprocedural facts: local
  alias maps, self-attribute reads/mutations, and the per-path
  mutated-vs-invalidated abstract interpretation behind REP100.
* :mod:`~repro.lint.analysis.rules` — the six cross-module rules.
* :mod:`~repro.lint.analysis.engine` — orchestration + suppression/config
  filtering, producing ordinary :class:`~repro.lint.findings.Finding`\\ s.
"""

from .engine import run_analysis
from .model import Project, build_project
from .rules import ANALYSIS_RULES, analysis_codes, analysis_rules_by_code

__all__ = [
    "run_analysis",
    "Project",
    "build_project",
    "ANALYSIS_RULES",
    "analysis_codes",
    "analysis_rules_by_code",
]
