"""Whole-program analysis: REP100–REP105, REP200-, and REP300-series.

Layered below :mod:`repro.lint.cli`:

* :mod:`~repro.lint.analysis.model` — project symbol table: modules,
  import-alias resolution (absolute + relative), classes with linearized
  ancestry, functions with call arities, re-export chasing.
* :mod:`~repro.lint.analysis.dataflow` — intraprocedural facts: local
  alias maps, self-attribute reads/mutations, and the per-path
  mutated-vs-invalidated abstract interpretation behind REP100.
* :mod:`~repro.lint.analysis.layers` — the declared layer map resolved
  over the analyzed modules, with import edges (REP200, --arch-report).
* :mod:`~repro.lint.analysis.effects` — interprocedural effect inference
  over the resolvable call graph (REP201/REP202/REP204, --arch-report).
* :mod:`~repro.lint.analysis.rules` — the six cross-module protocol
  rules (REP100–REP105).
* :mod:`~repro.lint.analysis.arch_rules` — the six architecture rules
  (REP200–REP205) over the shared :class:`ArchContext`.
* :mod:`~repro.lint.analysis.ownership` — the interprocedural
  ownership/escape model: per-attr owners, param capture summaries,
  shared-object detection (--ownership-report).
* :mod:`~repro.lint.analysis.concurrency_rules` — the seven
  concurrency-safety rules (REP300–REP306) over the shared
  :class:`ConcurrencyContext`.
* :mod:`~repro.lint.analysis.engine` — orchestration + suppression/config
  filtering, producing ordinary :class:`~repro.lint.findings.Finding`\\ s,
  and the ``--arch-report``/``--ownership-report`` data builders.
"""

from .arch_rules import ARCH_RULES, ArchContext, arch_codes
from .concurrency_rules import (
    CONCURRENCY_RULES,
    ConcurrencyContext,
    concurrency_codes,
)
from .engine import (
    ALL_ANALYSIS_RULES,
    build_arch_report,
    build_ownership_report,
    run_analysis,
)
from .model import Project, build_project
from .ownership import OwnershipModel

#: Every whole-program rule, both families — the public catalogue.
ANALYSIS_RULES = ALL_ANALYSIS_RULES


def analysis_codes():
    """Codes whose selection implies the whole-program analysis."""
    return [rule.code for rule in ANALYSIS_RULES]


def analysis_rules_by_code():
    return {rule.code: rule for rule in ANALYSIS_RULES}


__all__ = [
    "run_analysis",
    "build_arch_report",
    "build_ownership_report",
    "Project",
    "build_project",
    "ArchContext",
    "ConcurrencyContext",
    "OwnershipModel",
    "ANALYSIS_RULES",
    "ARCH_RULES",
    "CONCURRENCY_RULES",
    "analysis_codes",
    "arch_codes",
    "concurrency_codes",
    "analysis_rules_by_code",
]
