"""The architecture rule family, REP200–REP205.

Where REP100–REP105 police cross-module *protocol* contracts, these rules
police the declared architecture itself — the properties the ROADMAP's
scale-out items depend on:

========  ==============================================================
REP200    import from a higher layer (engine must not know the protocol)
REP201    sim-time/engine access in confined-layer code outside the
          declared touchpoint allowlist (engine-independence)
REP202    mutable module-global (or class-level mutable attribute)
          reachable from per-node methods (partition safety)
REP203    per-node/per-event class without ``__slots__`` (memory lean)
REP204    RNG stream requested off the consuming subsystem's declared
          named streams, or with a dynamic name (reproducibility)
REP205    set iteration order escaping into send/schedule (determinism)
========  ==============================================================

All six share one :class:`ArchContext` — the resolved layer map, the
interprocedural effect sets, and the per-node class closure — built once
per analysis run.  The layer map comes from ``[tool.repro-lint.layers]``;
with no declared layers, REP200–REP203 are inert and REP204/REP205 fall
back to their config-independent checks (dynamic stream names, escaping
set iteration).
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..config import LintConfig
from .effects import (
    EffectMap,
    FunctionEffects,
    GLOBAL_MUT_PREFIX,
    SIM_EFFECTS,
    STREAM_PREFIX,
    StreamRequest,
    infer_effects,
    per_node_classes,
    stream_name,
)
from .layers import LayerMap, build_layer_map
from .model import ClassInfo, FunctionInfo, ModuleInfo, Project, dotted_parts
from .rules import AddFn, AnalysisRule, _SCHEDULE_ATTRS, _SEND_ATTRS

__all__ = ["ArchContext", "ArchRule", "ARCH_RULES", "arch_codes"]

#: Base-class names (suffix match) whose subclasses need no ``__slots__``
#: audit: enum members are singletons, protocols/ABCs are never
#: instantiated, exceptions are cold-path.
_SLOTS_EXEMPT_BASES = (
    "Enum", "IntEnum", "StrEnum", "IntFlag", "Flag", "Protocol",
    "NamedTuple", "TypedDict", "ABC", "Exception", "Error", "Warning",
)

_SET_FACTORIES = frozenset({"set", "frozenset"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class ArchContext:
    """Everything the REP200-series shares: one build per analysis run."""

    def __init__(self, project: Project, config: LintConfig) -> None:
        self.project = project
        self.config = config
        self.layer_map: LayerMap = build_layer_map(config.layers, project)
        self.effects: EffectMap = infer_effects(project, self.layer_map)
        # With a layer map declared, only loops in *mapped* modules seed
        # per-node cardinality: benchmark/driver sweeps construct whole
        # simulations in loops without making the engine "per-node".
        # Factories get one further restriction -- a top-layer factory
        # (run_scenario) builds whole simulations, so experiment sweeps
        # calling it in a loop must not seed either.
        in_scope = None
        factory_scope = None
        if config.layers.order:
            top = config.layers.order[-1]
            in_scope = (
                lambda module_name: config.layers.layer_of(module_name)
                is not None
            )
            factory_scope = lambda module_name: (
                config.layers.layer_of(module_name) is not None
                and config.layers.layer_of(module_name) != top
            )
        #: per-node/per-event class qualname -> reason.
        self.per_node: Dict[str, str] = per_node_classes(
            project, self.effects, in_scope, factory_scope
        )

    # ------------------------------------------------------------------
    def below_top(self, module_name: str) -> bool:
        """Mapped to a layer strictly below the top one?"""
        order = self.config.layers.order
        if not order:
            return False
        layer = self.layer_map.layer_of_module(module_name)
        return layer is not None and layer != order[-1]

    def is_touchpoint(self, function: FunctionInfo) -> bool:
        names = [function.qualname, function.name]
        if function.cls is not None:
            names.append(f"{function.cls.name}.{function.name}")
        return self.config.layers.is_touchpoint(*names)

    def declared_streams(self, module_name: str) -> Optional[Tuple[str, ...]]:
        """Allowed stream-name patterns for ``module_name`` (longest
        declared subsystem prefix wins); ``None`` when undeclared."""
        best: Optional[Tuple[str, ...]] = None
        best_len = -1
        for prefix, patterns in self.config.rng_streams:
            if module_name == prefix or module_name.startswith(prefix + "."):
                if len(prefix) > best_len:
                    best, best_len = patterns, len(prefix)
        return best


class ArchRule(AnalysisRule):
    """Base class for rules that consume the shared :class:`ArchContext`."""

    def run(self, project: Project, add: AddFn) -> None:  # pragma: no cover
        raise RuntimeError(
            f"{self.code} needs an ArchContext; use run_arch()"
        )

    def run_arch(self, ctx: ArchContext, add: AddFn) -> None:
        raise NotImplementedError


class LayerImportRule(ArchRule):
    """REP200: no layer imports a layer above it."""

    code = "REP200"
    name = "layer-import"
    summary = (
        "module imports a higher layer of the declared layer map; the "
        "engine/transport must stay ignorant of the protocol built on it"
    )

    def run_arch(self, ctx: ArchContext, add: AddFn) -> None:
        for edge in ctx.layer_map.violations():
            add(
                edge.source,
                edge.node,
                self.code,
                f"{edge.source.name} ({edge.source_layer} layer) imports "
                f"{edge.target} ({edge.target_layer} layer), which sits "
                "above it in the declared layer map; invert the dependency "
                "or move the shared piece down",
            )


class EngineTouchpointRule(ArchRule):
    """REP201: confined-layer code reaches the engine only via touchpoints."""

    code = "REP201"
    name = "engine-touchpoint"
    summary = (
        "protocol-layer function reads the simulation clock, schedules, or "
        "holds an engine reference outside the declared touchpoint "
        "allowlist; the runtime-interface split needs protocol code to be "
        "engine-independent"
    )

    def run_arch(self, ctx: ArchContext, add: AddFn) -> None:
        for qualname in sorted(ctx.effects.functions):
            record = ctx.effects.functions[qualname]
            function = record.function
            if not ctx.layer_map.is_confined(function.module.name):
                continue
            sim_effects = record.effects & SIM_EFFECTS
            if not sim_effects or ctx.is_touchpoint(function):
                continue
            direct = sorted(sim_effects & record.direct)
            if direct:
                effect = direct[0]
                site = record.sites.get(effect, function.node)
                how = f"has direct {', '.join(direct)} access"
            else:
                effect = sorted(sim_effects)[0]
                site = function.node
                how = (
                    f"inherits {', '.join(sorted(sim_effects))} via "
                    f"{record.via.get(effect, 'a callee')}()"
                )
            add(
                function.module,
                site,
                self.code,
                f"{qualname} ({ctx.layer_map.layer_of_module(function.module.name)} "
                f"layer) {how}; route it through a declared engine "
                "touchpoint or add one to "
                "[tool.repro-lint.layers] engine-touchpoints",
            )


class SharedStateRule(ArchRule):
    """REP202: per-node code never mutates module-global state."""

    code = "REP202"
    name = "shared-mutable-state"
    summary = (
        "per-node class keeps or mutates shared mutable state (module "
        "global or class-level container); partitioned multi-core "
        "execution requires node state to be process-local"
    )

    def run_arch(self, ctx: ArchContext, add: AddFn) -> None:
        for qualname in sorted(ctx.per_node):
            cls = ctx.project.classes.get(qualname)
            if cls is None or not ctx.below_top(cls.module.name):
                continue
            self._check_class_attrs(cls, add)
            self._check_methods(ctx, cls, add)

    def _check_class_attrs(self, cls: ClassInfo, add: AddFn) -> None:
        from .effects import _is_mutable_value

        for stmt in cls.node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_value(cls.module, value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id != "__slots__":
                    add(
                        cls.module,
                        stmt,
                        self.code,
                        f"per-node class {cls.name} declares class-level "
                        f"mutable attribute '{target.id}'; every node "
                        "shares one container — move it into __init__",
                    )

    def _check_methods(self, ctx: ArchContext, cls: ClassInfo, add: AddFn) -> None:
        for method in cls.methods.values():
            record = ctx.effects.of(method.qualname)
            if record is None:
                continue
            muts = sorted(
                e for e in record.effects if e.startswith(GLOBAL_MUT_PREFIX)
            )
            if not muts:
                continue
            effect = muts[0]
            target = effect[len(GLOBAL_MUT_PREFIX):]
            site = record.sites.get(effect, method.node)
            via = (
                ""
                if effect in record.direct
                else f" (via {record.via.get(effect, 'a callee')}())"
            )
            add(
                cls.module,
                site,
                self.code,
                f"per-node method {cls.name}.{method.name}() mutates "
                f"module-global '{target}'{via}; shared mutable state "
                "breaks partitioned execution — keep node state on the "
                "instance",
            )


class SlotsRule(ArchRule):
    """REP203: per-node/per-event classes carry ``__slots__`` and avoid
    string-keyed hot dicts."""

    code = "REP203"
    name = "per-node-slots"
    summary = (
        "class instantiated per-node/per-event lacks __slots__ (or "
        "inherits a __dict__ from a slotless base), or keeps a dict "
        "subscripted with string-literal hot keys; at 100k nodes the "
        "per-instance dict dominates memory and every string access "
        "re-hashes what an interned int would compare in one word"
    )

    #: dict methods whose first argument is the key.
    _DICT_KEY_METHODS = frozenset({"get", "setdefault", "pop"})

    def run_arch(self, ctx: ArchContext, add: AddFn) -> None:
        reported: Set[str] = set()
        for qualname in sorted(ctx.per_node):
            cls = ctx.project.classes.get(qualname)
            if cls is None or not ctx.below_top(cls.module.name):
                continue
            if ctx.config.slots.is_exempt(cls.qualname, cls.name):
                continue
            self._check_str_keyed_dicts(ctx, cls, add)
            if self._exempt_ancestry(ctx, cls):
                continue
            offender = self._slotless_ancestor(cls)
            if offender is None or offender.qualname in reported:
                continue
            reported.add(offender.qualname)
            where = (
                ""
                if offender is cls
                else f" (via slotless base {offender.name})"
            )
            add(
                offender.module,
                offender.node,
                self.code,
                f"{offender.name} is instantiated per-node/per-event "
                f"({ctx.per_node[qualname]}) but has no __slots__{where}; "
                "add __slots__ (or dataclass(slots=True)), or exempt it "
                "under [tool.repro-lint.slots]",
            )

    # -- string-keyed hot dicts ----------------------------------------
    def _check_str_keyed_dicts(
        self, ctx: ArchContext, cls: ClassInfo, add: AddFn
    ) -> None:
        """Flag dict attributes of a per-node class whose methods access
        them with string-literal (or f-string) keys.

        A per-node ``self.stats["gossip"]`` hashes and compares a string
        on every hot-path touch and keeps one str-keyed dict per node;
        the compact-state substrate interns such key spaces to dense
        integers once (``PatternSpace.intern_content``) so per-node state
        can live in flat arrays.  Only *literal* string keys are flagged
        — a dict keyed by a variable may already hold interned ints.
        """
        dict_attrs = self._dict_attrs(cls)
        if not dict_attrs:
            return
        for attr, site in sorted(
            self._str_keyed_sites(cls, dict_attrs).items()
        ):
            add(
                cls.module,
                site,
                self.code,
                f"per-node class {cls.name} accesses dict '{attr}' with "
                "string-literal hot keys "
                f"({ctx.per_node[cls.qualname]}); intern the key space to "
                "integers (the PatternSpace.intern_content idiom) so "
                "per-node state can use flat int-keyed columns, or exempt "
                "the class under [tool.repro-lint.slots]",
            )

    @staticmethod
    def _dict_attrs(cls: ClassInfo) -> Set[str]:
        """Instance attributes assigned a dict (literal, comprehension,
        ``dict()``/``defaultdict()``/``Counter()``) in any method."""
        attrs: Set[str] = set()
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                is_dict = isinstance(value, (ast.Dict, ast.DictComp))
                if isinstance(value, ast.Call):
                    parts = dotted_parts(value.func)
                    is_dict = bool(parts) and parts[-1] in (
                        "dict", "defaultdict", "OrderedDict", "Counter"
                    )
                if not is_dict:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        return attrs

    def _str_keyed_sites(
        self, cls: ClassInfo, dict_attrs: Set[str]
    ) -> Dict[str, ast.AST]:
        """attr name -> first site where it is keyed by a string literal."""
        sites: Dict[str, ast.AST] = {}
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                attr: Optional[str] = None
                key: Optional[ast.expr] = None
                if isinstance(node, ast.Subscript):
                    attr = self._self_attr(node.value)
                    key = node.slice
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._DICT_KEY_METHODS
                    and node.args
                ):
                    attr = self._self_attr(node.func.value)
                    key = node.args[0]
                if (
                    attr in dict_attrs
                    and attr not in sites
                    and key is not None
                    and self._is_str_key(key)
                ):
                    sites[attr] = node
        return sites

    @staticmethod
    def _self_attr(expr: ast.expr) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    @staticmethod
    def _is_str_key(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, str)
        return isinstance(expr, ast.JoinedStr)

    @staticmethod
    def _exempt_ancestry(ctx: ArchContext, cls: ClassInfo) -> bool:
        """Enums/protocols/exceptions, and classes with unresolved external
        bases we cannot audit, are skipped."""
        for name in cls.ancestry_names():
            short = name.split(".")[-1]
            if short.endswith(_SLOTS_EXEMPT_BASES):
                return True
            if (
                name not in ctx.project.classes
                and name != cls.qualname
                and "." in name
            ):
                # unresolved non-local base: slots status unknowable
                if ctx.project.lookup(name) is None:
                    return True
        return False

    def _slotless_ancestor(self, cls: ClassInfo) -> Optional[ClassInfo]:
        for ancestor in cls.mro():
            if not self._is_slotted(ancestor):
                return ancestor
        return None

    @staticmethod
    def _is_slotted(cls: ClassInfo) -> bool:
        for stmt in cls.node.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in cls.node.decorator_list:
            if isinstance(decorator, ast.Call):
                parts = dotted_parts(decorator.func)
                if parts and parts[-1] == "dataclass":
                    for kw in decorator.keywords:
                        if (
                            kw.arg == "slots"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            return True
        return False


class RngStreamRule(ArchRule):
    """REP204: stream requests stay on the consumer's declared streams."""

    code = "REP204"
    name = "rng-stream-discipline"
    summary = (
        "RandomStreams stream requested with a dynamic name, or off the "
        "consuming subsystem's declared stream names; named streams are "
        "the reproducibility contract between subsystems"
    )

    def run_arch(self, ctx: ArchContext, add: AddFn) -> None:
        for qualname in sorted(ctx.effects.functions):
            record = ctx.effects.functions[qualname]
            for request in record.stream_requests:
                self._check_request(ctx, record, request, add)
            self._check_inherited(ctx, record, add)

    def _check_request(
        self,
        ctx: ArchContext,
        record: FunctionEffects,
        request: StreamRequest,
        add: AddFn,
    ) -> None:
        module = record.function.module
        if request.name is None:
            add(
                module,
                request.node,
                self.code,
                f"{record.function.qualname} requests a RandomStreams "
                "stream with a dynamic name; stream names are the "
                "reproducibility contract — use a literal (f-strings with "
                "a literal prefix are fine)",
            )
            return
        patterns = ctx.declared_streams(request.consumer)
        if patterns is None:
            return
        if not any(fnmatch.fnmatch(request.name, p) for p in patterns):
            add(
                module,
                request.node,
                self.code,
                f"stream '{request.name}' is handed to {request.consumer}, "
                f"whose declared streams are {', '.join(patterns)}; draw "
                "from the consuming subsystem's own named stream "
                "(see [tool.repro-lint.rng-streams])",
            )

    def _check_inherited(
        self, ctx: ArchContext, record: FunctionEffects, add: AddFn
    ) -> None:
        """A declared subsystem inheriting a foreign stream through an
        *undeclared* helper is laundering; flag the caller."""
        module = record.function.module
        patterns = ctx.declared_streams(module.name)
        if patterns is None:
            return
        for effect in sorted(record.effects - record.direct):
            if not effect.startswith(STREAM_PREFIX):
                continue
            name, origin = stream_name(effect)
            if name == "?" or ctx.declared_streams(origin) is not None:
                continue  # dynamic/declared origins are flagged at the site
            if not any(fnmatch.fnmatch(name, p) for p in patterns):
                add(
                    module,
                    record.function.node,
                    self.code,
                    f"{record.function.qualname} draws from stream "
                    f"'{name}' via {record.via.get(effect, origin)}(); its "
                    f"subsystem declares {', '.join(patterns)} — keep "
                    "draws on the subsystem's own streams",
                )


class OrderedEmissionRule(ArchRule):
    """REP205: set iteration order must not reach send/schedule."""

    code = "REP205"
    name = "ordered-emission"
    summary = (
        "iteration over a set feeds message emission or scheduling; set "
        "order is hash-dependent, breaking the deterministic (time, seq) "
        "merge contract — iterate sorted(...)"
    )

    def run_arch(self, ctx: ArchContext, add: AddFn) -> None:
        class_sets: Dict[str, Set[str]] = {}
        for module in ctx.project.modules.values():
            for function in self._functions(module):
                owner = function.cls
                if owner is not None and owner.qualname not in class_sets:
                    class_sets[owner.qualname] = self._self_set_attrs(owner)
                attrs = class_sets.get(owner.qualname, set()) if owner else set()
                self._check_function(module, function, attrs, add)

    @staticmethod
    def _functions(module: ModuleInfo) -> Iterable[FunctionInfo]:
        yield from module.functions.values()
        for cls in module.classes.values():
            yield from cls.methods.values()

    # -- set-typed bindings --------------------------------------------
    def _self_set_attrs(self, cls: ClassInfo) -> Set[str]:
        attrs: Set[str] = set()
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._is_set_value(cls.module, node.value):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        return attrs

    @staticmethod
    def _is_set_value(module: ModuleInfo, value: ast.expr) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            parts = dotted_parts(value.func)
            return bool(parts) and parts[-1] in _SET_FACTORIES
        return False

    def _local_sets(self, module: ModuleInfo, func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._is_set_value(
                module, node.value
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _is_set_expr(
        self, expr: ast.expr, local_sets: Set[str], self_sets: Set[str]
    ) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in local_sets
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr in self_sets
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPS):
            return self._is_set_expr(
                expr.left, local_sets, self_sets
            ) or self._is_set_expr(expr.right, local_sets, self_sets)
        return False

    # -- escape detection ----------------------------------------------
    @staticmethod
    def _emits(module: ModuleInfo, body: Iterable[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in (
                    _SEND_ATTRS | _SCHEDULE_ATTRS
                ):
                    return True
                resolved = module.resolve_call(node)
                if resolved and resolved.split(".")[-1] == "Message":
                    return True
        return False

    def _check_function(
        self,
        module: ModuleInfo,
        function: FunctionInfo,
        self_sets: Set[str],
        add: AddFn,
    ) -> None:
        local_sets = self._local_sets(module, function.node)
        if not local_sets and not self_sets:
            return
        for node in ast.walk(function.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(
                    node.iter, local_sets, self_sets
                ) and self._emits(module, node.body):
                    add(
                        module,
                        node,
                        self.code,
                        f"{function.qualname} iterates a set and "
                        "sends/schedules inside the loop; set order is "
                        "hash-dependent — iterate sorted(...) so emission "
                        "order is deterministic",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in (_SEND_ATTRS | _SCHEDULE_ATTRS)
                ):
                    continue
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(
                            sub, (ast.ListComp, ast.GeneratorExp)
                        ) and any(
                            self._is_set_expr(g.iter, local_sets, self_sets)
                            for g in sub.generators
                        ):
                            add(
                                module,
                                sub,
                                self.code,
                                f"{function.qualname} hands a "
                                "set-order-dependent comprehension to a "
                                "send/schedule call; wrap the set in "
                                "sorted(...) first",
                            )


ARCH_RULES: List[ArchRule] = [
    LayerImportRule(),
    EngineTouchpointRule(),
    SharedStateRule(),
    SlotsRule(),
    RngStreamRule(),
    OrderedEmissionRule(),
]


def arch_codes() -> List[str]:
    return [rule.code for rule in ARCH_RULES]
