"""The project model: modules, classes, functions, and name resolution.

The per-file linter (:mod:`repro.lint.rules`) reasons about one tree at a
time; the whole-program rules (REP100–REP105) need to know *what a name
means across the project*: which class a base name refers to, which function
a callback resolves to, which methods a class inherits.  This module builds
that model in one pass over the analyzed files:

* :class:`ModuleInfo` — one parsed file: import aliases (absolute *and*
  relative imports resolved to canonical dotted names), top-level functions,
  classes.
* :class:`ClassInfo` / :class:`FunctionInfo` — the class and callable
  records, with enough signature information for arity checks.
* :class:`Project` — the index over everything, plus the resolution helpers
  the rules use: ``resolve_name`` (local name → project symbol),
  ``lookup`` (dotted name → class/function, chasing re-exports), and
  ``mro_method`` (method lookup through the class hierarchy).

Everything is syntactic; files that fail to parse are skipped (the per-file
walker already reports them as errors).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "Project",
    "build_project",
    "dotted_parts",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def dotted_parts(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` → ``["a", "b", "c"]``; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _module_name_for(rel: str) -> str:
    """Dotted module name for a repo-relative POSIX path.

    ``src/repro/pubsub/cache.py`` → ``repro.pubsub.cache``;
    ``benchmarks/record.py`` → ``benchmarks.record``; package
    ``__init__.py`` files name the package itself.
    """
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or rel


class FunctionInfo:
    """One ``def`` — a module-level function or a method."""

    __slots__ = ("name", "qualname", "node", "module", "cls", "is_lambda")

    def __init__(
        self,
        name: str,
        qualname: str,
        node: Union[FunctionNode, ast.Lambda],
        module: "ModuleInfo",
        cls: "Optional[ClassInfo]" = None,
    ) -> None:
        self.name = name
        self.qualname = qualname
        self.node = node
        self.module = module
        self.cls = cls
        self.is_lambda = isinstance(node, ast.Lambda)

    def arity(self) -> Tuple[int, Optional[int]]:
        """``(min_args, max_args)`` for a *call*, ``self`` excluded for
        methods; ``max_args`` is ``None`` when the function takes ``*args``.
        """
        args = self.node.args
        positional = list(args.posonlyargs) + list(args.args)
        if self.cls is not None and positional:
            # Bound call: ``self`` is supplied by the attribute access.
            # (Heuristic: staticmethods are rare here and would only relax
            # the check by one argument.)
            decorators = getattr(self.node, "decorator_list", [])
            is_static = any(
                isinstance(d, ast.Name) and d.id == "staticmethod"
                for d in decorators
            )
            if not is_static:
                positional = positional[1:]
        max_args: Optional[int] = None if args.vararg else len(positional)
        min_args = len(positional) - len(args.defaults)
        if min_args < 0:
            min_args = 0
        return min_args, max_args

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.qualname}>"


class ClassInfo:
    """One ``class`` statement with its methods and (resolved) bases."""

    __slots__ = ("name", "qualname", "node", "module", "base_names", "bases",
                 "methods")

    def __init__(
        self, name: str, qualname: str, node: ast.ClassDef, module: "ModuleInfo"
    ) -> None:
        self.name = name
        self.qualname = qualname
        self.node = node
        self.module = module
        #: canonical dotted names of the declared bases (resolution of the
        #: *expressions*; may name classes outside the analyzed set).
        self.base_names: List[str] = []
        #: bases resolved to in-project ClassInfo records (second pass).
        self.bases: List[ClassInfo] = []
        self.methods: Dict[str, FunctionInfo] = {}

    def mro(self) -> List["ClassInfo"]:
        """Linearized ancestry (self first, DFS, duplicates dropped)."""
        seen: Set[str] = set()
        order: List[ClassInfo] = []
        stack: List[ClassInfo] = [self]
        while stack:
            cls = stack.pop(0)
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            order.append(cls)
            stack = list(cls.bases) + stack
        return order

    def mro_method(self, name: str) -> Optional[FunctionInfo]:
        for cls in self.mro():
            method = cls.methods.get(name)
            if method is not None:
                return method
        return None

    def ancestry_names(self) -> Set[str]:
        """Every canonical base name reachable, including unresolved ones."""
        names: Set[str] = set()
        for cls in self.mro():
            names.add(cls.qualname)
            names.update(cls.base_names)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClassInfo {self.qualname}>"


class ModuleInfo:
    """One analyzed file."""

    __slots__ = ("path", "rel", "name", "tree", "source", "imports",
                 "functions", "classes")

    def __init__(
        self, path: Path, rel: str, name: str, tree: ast.Module, source: str
    ) -> None:
        self.path = path
        self.rel = rel
        self.name = name
        self.tree = tree
        self.source = source
        #: local alias → canonical dotted target ("np" → "numpy",
        #: "Message" → "repro.network.message.Message").
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    def _package(self, level: int) -> str:
        """The package ``level`` dots refer to in a relative import."""
        parts = self.name.split(".")
        if not self.rel.endswith("__init__.py"):
            parts = parts[:-1]
        cut = level - 1
        if cut:
            parts = parts[:-cut] if cut < len(parts) else []
        return ".".join(parts)

    def collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = alias.name if alias.asname else (
                        alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._package(node.level)
                    if node.module:
                        base = f"{base}.{node.module}" if base else node.module
                elif node.module:
                    base = node.module
                else:  # pragma: no cover - "from import" without module
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def resolve_parts(self, parts: Sequence[str]) -> str:
        """Canonicalize a dotted name's head through the import aliases."""
        head, rest = parts[0], list(parts[1:])
        resolved = self.imports.get(head, head)
        return ".".join([resolved] + rest)

    def resolve_expr(self, node: ast.expr) -> Optional[str]:
        parts = dotted_parts(node)
        if parts is None:
            return None
        return self.resolve_parts(parts)

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve_expr(call.func)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModuleInfo {self.name} ({self.rel})>"


class Project:
    """Everything the whole-program rules look at."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.modules_by_rel: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}

    # ------------------------------------------------------------------
    def lookup(self, qualname: str, _depth: int = 0) -> Union[
        ClassInfo, FunctionInfo, None
    ]:
        """Find the class/function a canonical dotted name refers to.

        Chases re-exports: ``repro.parallel.ProcessExecutor`` resolves
        through ``repro/parallel/__init__.py``'s ``from .executor import
        ProcessExecutor`` to the defining module.
        """
        if _depth > 8:  # re-export cycle guard
            return None
        hit = self.classes.get(qualname) or self.functions.get(qualname)
        if hit is not None:
            return hit
        parts = qualname.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:i]))
            if module is None:
                continue
            symbol, rest = parts[i], parts[i + 1:]
            if not rest:
                if symbol in module.classes:
                    return module.classes[symbol]
                if symbol in module.functions:
                    return module.functions[symbol]
            if symbol in module.imports:
                target = ".".join([module.imports[symbol]] + rest)
                return self.lookup(target, _depth + 1)
            return None
        return None

    def canonical(self, qualname: str, _depth: int = 0) -> str:
        """Follow re-export aliases to the defining module's dotted name."""
        hit = self.lookup(qualname)
        if hit is not None:
            return hit.qualname
        return qualname

    def resolve_name(
        self, module: ModuleInfo, parts: Sequence[str]
    ) -> Union[ClassInfo, FunctionInfo, None]:
        """Resolve a local dotted name used inside ``module``."""
        head = parts[0]
        if len(parts) == 1:
            if head in module.functions:
                return module.functions[head]
            if head in module.classes:
                return module.classes[head]
        return self.lookup(module.resolve_parts(parts))


def _collect_module(module: ModuleInfo) -> None:
    module.collect_imports()
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{module.name}.{node.name}"
            module.functions[node.name] = FunctionInfo(
                node.name, qualname, node, module
            )
        elif isinstance(node, ast.ClassDef):
            qualname = f"{module.name}.{node.name}"
            cls = ClassInfo(node.name, qualname, node, module)
            for base in node.bases:
                resolved = module.resolve_expr(base)
                if resolved is not None:
                    cls.base_names.append(resolved)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionInfo(
                        item.name,
                        f"{qualname}.{item.name}",
                        item,
                        module,
                        cls,
                    )
            module.classes[node.name] = cls


def build_project(files: Sequence[Tuple[Path, str]]) -> Project:
    """Parse ``(path, rel_path)`` pairs into a linked :class:`Project`.

    Unreadable or syntactically-invalid files are skipped silently — the
    per-file walker has already reported them as :class:`LintError`\\ s.
    """
    project = Project()
    for path, rel in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue
        module = ModuleInfo(path, rel, _module_name_for(rel), tree, source)
        _collect_module(module)
        project.modules[module.name] = module
        project.modules_by_rel[rel] = module
    for module in project.modules.values():
        project.classes.update(
            {cls.qualname: cls for cls in module.classes.values()}
        )
        project.functions.update(
            {fn.qualname: fn for fn in module.functions.values()}
        )
    # Second pass: link base-class references across modules.  A bare base
    # name ("class Child(Base)") refers to the defining module's namespace.
    for cls in project.classes.values():
        for base_name in cls.base_names:
            base = project.lookup(base_name)
            if base is None and "." not in base_name:
                base = project.lookup(f"{cls.module.name}.{base_name}")
            if isinstance(base, ClassInfo):
                cls.bases.append(base)
    return project
