"""Interprocedural ownership / escape analysis over per-node classes.

ROADMAP item 2 (multi-core sharding) and item 3 (asyncio backend) need
one property the effect pass alone cannot show: *every object a node
mutates is owned by that node*, and everything crossing a node boundary
goes through the Network/engine seams.  This module assigns each
instance attribute of a per-node class an **owner** and tracks how
objects escape through calls, container stores, and constructions:

==================  ====================================================
``node-local``      constructed per instance, reachable from one node
``engine``          a runtime-substrate reference (engine or transport
                    layer object: the simulator, the network, a link)
``shared``          one mutable object aliased into *many* node
                    instances (an interner, a registry, a shared cache)
``shared-immutable``constants, tuples, frozen dataclass configs
``link-payload``    allocated locally but handed to a boundary send —
                    the object graph a partition cut would serialize
==================  ====================================================

Three interprocedural summaries power the classification and the
REP300-series rules in :mod:`.concurrency_rules`:

* **Param capture** — for every function, which parameters escape into
  long-lived state (``self.X = p``, container stores, or transitively:
  ``ReceivedLog(registry)`` whose ``__init__`` stores ``registry``).
* **Attr bindings** — for every class, the (annotation- or
  construction-derived) class each instance attribute is bound to.
* **Object mutation** — for every class, which instance attributes it
  mutates *as objects* (``self.a.append``, ``self.a[k] = v``, a call to
  a bound-class method that mutates its own state) — plain attribute
  rebinding does not count.

On top of these, :func:`shared_captures` finds construction sites of
per-node classes whose arguments are loop-invariant (one object handed
to every instance), and :func:`build_ownership_report` emits the
node-ownership graph, the touchpoints every cross-node edge uses, and
the candidate partition-cut seams — the input artifact the sharding
work consumes (``repro-lint --ownership-report``).

Everything is syntactic and deliberately conservative-but-shallow,
like the rest of the analysis package.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .dataflow import MUTATING_METHODS, build_alias_map, mutation_nodes
from .effects import Construction, resolve_call_target
from .model import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_parts,
)

__all__ = [
    "OWNER_NODE_LOCAL",
    "OWNER_ENGINE",
    "OWNER_SHARED",
    "OWNER_IMMUTABLE",
    "OWNER_LINK_PAYLOAD",
    "BOUNDARY_SEND_ATTRS",
    "BOUNDARY_SCHEDULE_ATTRS",
    "BOUNDARY_ATTRS",
    "ParamSummary",
    "SharedCapture",
    "BoundaryCall",
    "OwnershipModel",
]

OWNER_NODE_LOCAL = "node-local"
OWNER_ENGINE = "engine"
OWNER_SHARED = "shared"
OWNER_IMMUTABLE = "shared-immutable"
OWNER_LINK_PAYLOAD = "link-payload"

#: Attribute calls that hand an object to the transport (cross-node
#: edges; the superset of the REP101/REP205 send set with the
#: out-of-band dispatcher boundary methods included).
BOUNDARY_SEND_ATTRS = frozenset(
    {"send", "send_oob", "transmit", "send_gossip",
     "send_oob_request", "send_oob_event"}
)
#: Attribute calls that hand an object to the simulation calendar.
BOUNDARY_SCHEDULE_ATTRS = frozenset(
    {"schedule", "schedule_at", "schedule_call", "schedule_call_at"}
)
BOUNDARY_ATTRS = BOUNDARY_SEND_ATTRS | BOUNDARY_SCHEDULE_ATTRS

#: Containers (binding tags, not classes).
_CONTAINER = "<container>"
_IMMUTABLE = "<immutable>"

_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)
_IMMUTABLE_FACTORIES = frozenset({"tuple", "frozenset", "int", "float", "str",
                                  "bool", "bytes"})
_TYPING_WRAPPERS = frozenset({"Optional", "Final", "ClassVar", "Annotated"})


class ParamSummary:
    """How one function treats one of its parameters."""

    __slots__ = ("stored", "mutated", "stored_at")

    def __init__(self) -> None:
        #: escapes into long-lived state (attribute/container store),
        #: directly or through a callee.
        self.stored = False
        #: the object is mutated through this parameter.
        self.mutated = False
        #: ``(class qualname, attr)`` homes the object ends up stored at.
        self.stored_at: Set[Tuple[str, str]] = set()


class SharedCapture:
    """One loop-invariant argument handed to every instance of a
    per-node class and captured into its state."""

    __slots__ = ("construction", "param", "attr_homes", "arg_class",
                 "arg_expr", "mutated")

    def __init__(
        self,
        construction: Construction,
        param: str,
        attr_homes: Set[Tuple[str, str]],
        arg_class: Optional[ClassInfo],
        arg_expr: ast.expr,
    ) -> None:
        self.construction = construction
        self.param = param
        self.attr_homes = attr_homes
        self.arg_class = arg_class
        self.arg_expr = arg_expr
        #: filled by the model: the shared object is mutated through one
        #: of its capture homes.
        self.mutated = False


class BoundaryCall:
    """One cross-node touchpoint use inside a per-node class method."""

    __slots__ = ("function", "attr", "node")

    def __init__(
        self, function: FunctionInfo, attr: str, node: ast.Call
    ) -> None:
        self.function = function
        self.attr = attr
        self.node = node


# ----------------------------------------------------------------------
# Small syntactic helpers
# ----------------------------------------------------------------------


def _annotation_parts(ann: ast.expr) -> Optional[List[str]]:
    """The dotted name an annotation refers to, unwrapping
    ``Optional[X]``/``Final[X]`` and string annotations."""
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.Subscript):
        head = dotted_parts(ann.value)
        if head and head[-1] in _TYPING_WRAPPERS:
            inner = ann.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_parts(inner)
        return None
    return dotted_parts(ann)


def _param_names(function: FunctionInfo) -> List[str]:
    args = function.node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if names and function.cls is not None and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(a.arg for a in args.kwonlyargs)
    return names


def _positional_params(function: FunctionInfo) -> List[str]:
    args = function.node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if names and function.cls is not None and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _param_annotation(function: FunctionInfo, name: str) -> Optional[ast.expr]:
    args = function.node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.arg == name:
            return arg.annotation
    return None


def _is_frozen_dataclass(cls: ClassInfo) -> bool:
    for decorator in cls.node.decorator_list:
        if isinstance(decorator, ast.Call):
            parts = dotted_parts(decorator.func)
            if parts and parts[-1] == "dataclass":
                for kw in decorator.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


def _loop_bound_names(function_node: ast.AST, target: ast.AST) -> Set[str]:
    """Names bound by loops/comprehensions *enclosing* ``target``."""
    bound: Set[str] = set()

    def visit(node: ast.AST, inherited: Set[str]) -> bool:
        if node is target:
            bound.update(inherited)
            return True
        here = inherited
        if isinstance(node, (ast.For, ast.AsyncFor)):
            names = {
                sub.id
                for sub in ast.walk(node.target)
                if isinstance(sub, ast.Name)
            }
            here = inherited | names
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            names = set()
            for comp in node.generators:
                names.update(
                    sub.id
                    for sub in ast.walk(comp.target)
                    if isinstance(sub, ast.Name)
                )
            here = inherited | names
        for child in ast.iter_child_nodes(node):
            if visit(child, here):
                return True
        return False

    visit(function_node, set())
    return bound


def _names_in(expr: ast.expr) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _map_call_args(
    call: ast.Call, params: Sequence[str]
) -> Iterable[Tuple[str, ast.expr]]:
    """``(param name, argument expression)`` pairs for one call site."""
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            yield params[i], arg
    for kw in call.keywords:
        if kw.arg is not None:
            yield kw.arg, kw.value


# ----------------------------------------------------------------------
# The model
# ----------------------------------------------------------------------


class OwnershipModel:
    """Ownership facts over one project, computed from the arch context.

    Parameters are the pieces :class:`~.arch_rules.ArchContext` already
    holds; the model never rebuilds the effect fixpoint.
    """

    def __init__(
        self,
        project: Project,
        per_node: Dict[str, str],
        layer_of_module,
        confined_layers: Sequence[str],
    ) -> None:
        self.project = project
        self.per_node = per_node
        self._layer_of = layer_of_module
        self._confined = set(confined_layers)
        #: class qualname -> attr -> binding (class qualname or tag).
        self.attr_bindings: Dict[str, Dict[str, str]] = {}
        #: function qualname -> param name -> ParamSummary.
        self.param_summaries: Dict[str, Dict[str, ParamSummary]] = {}
        #: class qualname -> attrs mutated as objects.
        self.mutated_attrs: Dict[str, Set[str]] = {}
        #: class qualname -> methods that mutate their own instance.
        self.self_mutators: Dict[str, Set[str]] = {}
        self._build_bindings()
        self._build_mutators()
        self._build_param_summaries()
        self._close_mutated_attrs()

    # -- binding extraction --------------------------------------------
    def _functions(self) -> Iterable[FunctionInfo]:
        for module in self.project.modules.values():
            yield from module.functions.values()
            for cls in module.classes.values():
                yield from cls.methods.values()

    def _build_bindings(self) -> None:
        for cls in self.project.classes.values():
            bindings: Dict[str, str] = {}
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    targets: List[ast.expr] = []
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign):
                        targets, value = list(node.targets), node.value
                    elif (
                        isinstance(node, ast.AnnAssign)
                        and node.value is not None
                    ):
                        targets, value = [node.target], node.value
                    if value is None:
                        continue
                    for target in targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        binding = self._binding_of(method, value)
                        if binding is not None:
                            bindings.setdefault(target.attr, binding)
            self.attr_bindings[cls.qualname] = bindings

    def _binding_of(
        self, function: FunctionInfo, value: ast.expr
    ) -> Optional[str]:
        """Binding for one assigned value: class qualname or tag."""
        # Conditional expressions bind whichever arm resolves first.
        if isinstance(value, ast.IfExp):
            return (
                self._binding_of(function, value.body)
                or self._binding_of(function, value.orelse)
            )
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.SetComp, ast.DictComp)):
            return _CONTAINER
        if isinstance(value, ast.Constant):
            return _IMMUTABLE
        if isinstance(value, ast.Tuple):
            return _IMMUTABLE
        if isinstance(value, ast.Call):
            parts = dotted_parts(value.func)
            if parts is not None:
                if parts[-1] in _MUTABLE_FACTORIES:
                    return _CONTAINER
                if parts[-1] in _IMMUTABLE_FACTORIES:
                    return _IMMUTABLE
            resolved = resolve_call_target(
                self.project, function.module, function.cls, value
            )
            if isinstance(resolved, ClassInfo):
                return resolved.qualname
            return None
        if isinstance(value, ast.Name):
            ann = _param_annotation(function, value.id)
            if ann is not None:
                return self._annotation_binding(function.module, ann)
        return None

    def _annotation_binding(
        self, module: ModuleInfo, ann: ast.expr
    ) -> Optional[str]:
        parts = _annotation_parts(ann)
        if parts is None:
            return None
        if parts[-1] in _MUTABLE_FACTORIES or parts[-1] in (
            "Dict", "List", "Set", "MutableMapping", "MutableSet", "Deque",
        ):
            return _CONTAINER
        if parts[-1] in _IMMUTABLE_FACTORIES or parts[-1] in (
            "Tuple", "FrozenSet",
        ):
            return _IMMUTABLE
        resolved = self.project.resolve_name(module, parts)
        if isinstance(resolved, ClassInfo):
            return resolved.qualname
        return None

    def binding_class(self, cls_qualname: str, attr: str) -> Optional[ClassInfo]:
        binding = self.attr_bindings.get(cls_qualname, {}).get(attr)
        if binding is None or binding.startswith("<"):
            return None
        return self.project.classes.get(binding)

    # -- object mutation -----------------------------------------------
    @staticmethod
    def _object_mutations(function: FunctionInfo) -> Set[str]:
        """Self attributes mutated *as objects* — plain ``self.a = v``
        rebinding excluded (that replaces the reference, it does not
        mutate the object other nodes may also hold)."""
        aliases = build_alias_map(function.node)
        mutated: Set[str] = set()
        for node, attrs in mutation_nodes(function.node, aliases):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if all(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in targets
                ):
                    continue  # rebind, not object mutation
            mutated |= attrs
        return mutated

    def _build_mutators(self) -> None:
        """Per class: directly object-mutating attrs and self-mutating
        methods, then a fixpoint over ``self.m()`` call chains."""
        direct_by_method: Dict[str, Set[str]] = {}
        for cls in self.project.classes.values():
            attrs: Set[str] = set()
            mutators: Set[str] = set()
            for method in cls.methods.values():
                mutated = self._object_mutations(method)
                direct_by_method[method.qualname] = mutated
                if mutated:
                    attrs |= mutated
                    mutators.add(method.name)
            self.mutated_attrs[cls.qualname] = attrs
            self.self_mutators[cls.qualname] = mutators
        # self.m() chains: a method calling a self-mutator mutates too.
        changed = True
        while changed:
            changed = False
            for cls in self.project.classes.values():
                mutators = self.self_mutators[cls.qualname]
                for method in cls.methods.values():
                    if method.name in mutators:
                        continue
                    for node in ast.walk(method.node):
                        if not isinstance(node, ast.Call):
                            continue
                        func = node.func
                        if (
                            isinstance(func, ast.Attribute)
                            and isinstance(func.value, ast.Name)
                            and func.value.id == "self"
                            and func.attr in mutators
                        ):
                            mutators.add(method.name)
                            changed = True
                            break

    def _close_mutated_attrs(self) -> None:
        """Extend per-class mutated attrs through bound-class methods:
        ``self.a.m()`` where ``a`` is bound to class ``D`` and ``m``
        mutates ``D``'s own state mutates ``a``'s object."""
        for cls in self.project.classes.values():
            bindings = self.attr_bindings.get(cls.qualname, {})
            if not bindings:
                continue
            mutated = self.mutated_attrs[cls.qualname]
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if not (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Attribute)
                        and isinstance(func.value.value, ast.Name)
                        and func.value.value.id == "self"
                    ):
                        continue
                    attr = func.value.attr
                    if attr in mutated or attr not in bindings:
                        continue
                    if func.attr in MUTATING_METHODS:
                        mutated.add(attr)
                        continue
                    bound = self.binding_class(cls.qualname, attr)
                    if bound is not None and func.attr in (
                        self.self_mutators.get(bound.qualname, set())
                    ):
                        mutated.add(attr)

    # -- param capture summaries ---------------------------------------
    def param_summary(self, qualname: str) -> Dict[str, ParamSummary]:
        return self.param_summaries.get(qualname, {})

    def _build_param_summaries(self) -> None:
        for function in self._functions():
            summaries = {
                name: ParamSummary() for name in _param_names(function)
            }
            if summaries:
                self.param_summaries[function.qualname] = summaries
                self._direct_param_facts(function, summaries)
        # Transitive: a param handed to a callee that stores/mutates it
        # is itself stored/mutated (``ReceivedLog(registry)``).
        changed = True
        rounds = 0
        while changed and rounds < 16:
            changed = False
            rounds += 1
            for function in self._functions():
                summaries = self.param_summaries.get(function.qualname)
                if not summaries:
                    continue
                if self._propagate_through_calls(function, summaries):
                    changed = True

    def _direct_param_facts(
        self, function: FunctionInfo, summaries: Dict[str, ParamSummary]
    ) -> None:
        cls = function.cls
        for node in ast.walk(function.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                value_names = (
                    {value.id} if isinstance(value, ast.Name) else set()
                )
                for target in targets:
                    # self.X = p / obj.X = p / container[k] = p
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        for name in value_names & summaries.keys():
                            summary = summaries[name]
                            summary.stored = True
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                                and cls is not None
                            ):
                                summary.stored_at.add(
                                    (cls.qualname, target.attr)
                                )
                    # p.X = v / p[k] = v mutates the param's object
                    root = target
                    while isinstance(root, (ast.Attribute, ast.Subscript)):
                        root = root.value
                    if (
                        isinstance(root, ast.Name)
                        and root.id in summaries
                        and root is not target
                    ):
                        summaries[root.id].mutated = True
            elif isinstance(node, ast.AugAssign):
                root = node.target
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if (
                    isinstance(root, ast.Name)
                    and root.id in summaries
                    and root is not node.target
                ):
                    summaries[root.id].mutated = True
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in MUTATING_METHODS:
                    # p.add(...) mutates p; container.append(p) stores p.
                    if (
                        isinstance(func.value, ast.Name)
                        and func.value.id in summaries
                    ):
                        summaries[func.value.id].mutated = True
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in summaries:
                            summaries[arg.id].stored = True

    def _propagate_through_calls(
        self, function: FunctionInfo, summaries: Dict[str, ParamSummary]
    ) -> bool:
        changed = False
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call_target(
                self.project, function.module, function.cls, node
            )
            callee: Optional[FunctionInfo] = None
            if isinstance(resolved, FunctionInfo):
                callee = resolved
            elif isinstance(resolved, ClassInfo):
                callee = resolved.mro_method("__init__")
            if callee is None:
                continue
            callee_summaries = self.param_summaries.get(callee.qualname)
            if not callee_summaries:
                continue
            positional = _positional_params(callee)
            for param, arg in _map_call_args(node, positional):
                if not isinstance(arg, ast.Name) or arg.id not in summaries:
                    continue
                callee_summary = callee_summaries.get(param)
                if callee_summary is None:
                    continue
                summary = summaries[arg.id]
                if callee_summary.stored and not summary.stored:
                    summary.stored = True
                    changed = True
                if callee_summary.stored_at - summary.stored_at:
                    summary.stored_at |= callee_summary.stored_at
                    changed = True
                if callee_summary.mutated and not summary.mutated:
                    summary.mutated = True
                    changed = True
        return changed

    # -- shared captures -----------------------------------------------
    def shared_captures(
        self, constructions: Iterable[Construction]
    ) -> List[SharedCapture]:
        """Loop-invariant ctor args captured by per-node classes.

        A construction of a per-node class inside a loop hands each
        argument to *every* instance; an argument that does not derive
        from the loop variables (and is not a fresh per-iteration
        construction or constant) is one object shared across nodes.
        """
        captures: List[SharedCapture] = []
        for construction in constructions:
            if construction.cls.qualname not in self.per_node:
                continue
            if not construction.in_loop:
                continue
            init = construction.cls.mro_method("__init__")
            if init is None:
                continue
            loop_names = _loop_bound_names(
                construction.function.node, construction.node
            )
            positional = _positional_params(init)
            for param, arg in _map_call_args(construction.node, positional):
                if isinstance(arg, (ast.Constant, ast.Call, ast.IfExp,
                                    ast.Lambda)):
                    continue  # fresh / constant / conditional per call
                if not isinstance(arg, (ast.Name, ast.Attribute)):
                    continue
                if _names_in(arg) & loop_names:
                    continue  # derives from the loop variable: per-node
                summary = self.param_summaries.get(
                    init.qualname, {}
                ).get(param)
                if summary is None or not summary.stored:
                    continue
                homes = set(summary.stored_at)
                if not homes:
                    homes = {(construction.cls.qualname, param)}
                capture = SharedCapture(
                    construction,
                    param,
                    homes,
                    self._arg_class(construction.function, arg),
                    arg,
                )
                capture.mutated = summary.mutated or any(
                    attr in self.mutated_attrs.get(cls_qualname, set())
                    for cls_qualname, attr in homes
                )
                captures.append(capture)
        captures.sort(
            key=lambda c: (
                c.construction.function.module.rel,
                getattr(c.construction.node, "lineno", 0),
                c.param,
            )
        )
        return captures

    def _arg_class(
        self, function: FunctionInfo, arg: ast.expr
    ) -> Optional[ClassInfo]:
        """The class of a ctor argument, when statically resolvable."""
        if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            if arg.value.id == "self" and function.cls is not None:
                return self.binding_class(function.cls.qualname, arg.attr)
            return None
        if isinstance(arg, ast.Name):
            ann = _param_annotation(function, arg.id)
            if ann is not None:
                binding = self._annotation_binding(function.module, ann)
                if binding and not binding.startswith("<"):
                    return self.project.classes.get(binding)
            # name = Cls(...) earlier in the same function
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not any(
                    isinstance(t, ast.Name) and t.id == arg.id
                    for t in node.targets
                ):
                    continue
                value = node.value
                if isinstance(value, ast.IfExp):
                    value = value.body
                if isinstance(value, ast.Call):
                    resolved = resolve_call_target(
                        self.project, function.module, function.cls, value
                    )
                    if isinstance(resolved, ClassInfo):
                        return resolved
        return None

    # -- boundary calls -------------------------------------------------
    def boundary_calls(self) -> List[BoundaryCall]:
        """Every touchpoint use inside a per-node class method — the
        cross-node edges of the ownership graph."""
        calls: List[BoundaryCall] = []
        for qualname in sorted(self.per_node):
            cls = self.project.classes.get(qualname)
            if cls is None:
                continue
            for name in sorted(cls.methods):
                method = cls.methods[name]
                for node in ast.walk(method.node):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in BOUNDARY_ATTRS
                    ):
                        calls.append(BoundaryCall(method, node.func.attr, node))
        return calls

    # -- owner classification ------------------------------------------
    def owner_of(
        self,
        cls: ClassInfo,
        attr: str,
        shared_attrs: Set[Tuple[str, str]],
        payload_attrs: Set[Tuple[str, str]],
    ) -> str:
        if (cls.qualname, attr) in shared_attrs:
            return OWNER_SHARED
        binding = self.attr_bindings.get(cls.qualname, {}).get(attr)
        if binding == _IMMUTABLE:
            return OWNER_IMMUTABLE
        if binding is not None and not binding.startswith("<"):
            bound = self.project.classes.get(binding)
            if bound is not None:
                layer = self._layer_of(bound.module.name)
                if layer is not None and layer not in self._confined:
                    return OWNER_ENGINE
                if _is_frozen_dataclass(bound):
                    return OWNER_IMMUTABLE
        if (cls.qualname, attr) in payload_attrs:
            return OWNER_LINK_PAYLOAD
        return OWNER_NODE_LOCAL

    def payload_attrs(self) -> Set[Tuple[str, str]]:
        """``(class, attr)`` pairs whose value is handed to a boundary
        send somewhere in the class — link-payload owners."""
        out: Set[Tuple[str, str]] = set()
        for qualname in self.per_node:
            cls = self.project.classes.get(qualname)
            if cls is None:
                continue
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in BOUNDARY_SEND_ATTRS
                    ):
                        continue
                    for arg in node.args:
                        for sub in ast.walk(arg):
                            if (
                                isinstance(sub, ast.Attribute)
                                and isinstance(sub.value, ast.Name)
                                and sub.value.id == "self"
                            ):
                                out.add((qualname, sub.attr))
        return out
