"""The concurrency-safety rule family, REP300–REP306.

Where REP200–REP205 police the *declared architecture*, these rules
police the property the ROADMAP's sharding and asyncio items actually
need: per-node state is node-owned, and everything crossing a node
boundary passes the Network/engine seams.  They consume the
:class:`~.ownership.OwnershipModel` built over the same project model
and effect fixpoint as the REP200 series:

========  ==============================================================
REP300    node-owned object aliased into another node's state without
          passing a Network/engine touchpoint
REP301    mutation of an object reachable from ≥2 node instances that
          is not a declared shared service (cross-partition race)
REP302    ordering decision derived from ``id()``/``hash()`` in code
          with ``sim-schedule`` effects (breaks the (time, seq) merge)
REP303    boundary-send payload whose object graph closes over the
          engine or a per-node instance (unserializable partition cut)
REP304    wall-clock/blocking call reachable from protocol-layer code
          (would stall a cooperative asyncio backend)
REP305    set iteration order escaping into send/schedule through a
          call chain (the interprocedural REP205)
REP306    non-atomic write (bare ``open(..., "w")``/``json.dump`` with
          no rename in scope) in a declared durable module
========  ==============================================================

All seven share one :class:`ConcurrencyContext` wrapping the
:class:`~.arch_rules.ArchContext` — the ownership model is built once
per analysis run.  With no declared layer map the per-node closure is
still computed (loop-seeded), so REP300/REP301/REP302/REP303/REP305
work standalone; REP304 needs ``confined`` layers and is inert without
them, exactly like REP201, and REP306 needs the
``[tool.repro-lint.durable]`` module registry.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..config import LintConfig
from .arch_rules import ArchContext, OrderedEmissionRule
from .effects import BLOCKING, NET_SEND, SIM_SCHEDULE, WALL_CLOCK, resolve_call_target
from .model import ClassInfo, FunctionInfo, ModuleInfo, Project, dotted_parts
from .ownership import (
    BOUNDARY_ATTRS,
    BOUNDARY_SEND_ATTRS,
    OwnershipModel,
    SharedCapture,
    _map_call_args,
    _positional_params,
)
from .rules import AddFn, AnalysisRule

__all__ = [
    "ConcurrencyContext",
    "ConcurrencyRule",
    "CONCURRENCY_RULES",
    "concurrency_codes",
]


class ConcurrencyContext:
    """Everything the REP300-series shares: one build per analysis run."""

    def __init__(self, arch: ArchContext) -> None:
        self.arch = arch
        self.project: Project = arch.project
        self.config: LintConfig = arch.config
        self.effects = arch.effects
        self.per_node = arch.per_node
        self.model = OwnershipModel(
            arch.project,
            arch.per_node,
            arch.layer_map.layer_of_module,
            arch.config.layers.confined,
        )
        #: loop-invariant ctor args captured by per-node classes.
        self.captures: List[SharedCapture] = self.model.shared_captures(
            arch.effects.all_constructions()
        )

    # ------------------------------------------------------------------
    def is_touchpoint(self, function: FunctionInfo) -> bool:
        return self.arch.is_touchpoint(function)

    def is_confined(self, module_name: str) -> bool:
        return self.arch.layer_map.is_confined(module_name)

    def unconfined_layer(self, cls: ClassInfo) -> Optional[str]:
        """The *unconfined* mapped layer ``cls`` lives in, if any — the
        engine/transport substrate every node legitimately references."""
        layer = self.arch.layer_map.layer_of_module(cls.module.name)
        if layer is not None and layer not in self.config.layers.confined:
            return layer
        return None

    def declared_shared(self, capture: SharedCapture) -> bool:
        """The capture's object is a declared shared service."""
        names: List[str] = []
        if capture.arg_class is not None:
            names.append(capture.arg_class.qualname)
            names.append(capture.arg_class.name)
        for cls_qualname, attr in sorted(capture.attr_homes):
            names.append(f"{cls_qualname}.{attr}")
            names.append(f"{cls_qualname.rsplit('.', 1)[-1]}.{attr}")
        return self.config.ownership.is_declared(*names)


class ConcurrencyRule(AnalysisRule):
    """Base class for rules consuming the shared :class:`ConcurrencyContext`."""

    def run(self, project: Project, add: AddFn) -> None:  # pragma: no cover
        raise RuntimeError(
            f"{self.code} needs a ConcurrencyContext; use run_concurrency()"
        )

    def run_concurrency(self, ctx: ConcurrencyContext, add: AddFn) -> None:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------
    @staticmethod
    def _per_node_methods(
        ctx: ConcurrencyContext,
    ) -> Iterable[FunctionInfo]:
        for qualname in sorted(ctx.per_node):
            cls = ctx.project.classes.get(qualname)
            if cls is None:
                continue
            for name in sorted(cls.methods):
                yield cls.methods[name]

    @staticmethod
    def _receiver_class(
        ctx: ConcurrencyContext, function: FunctionInfo, recv: ast.expr
    ) -> Optional[ClassInfo]:
        """The per-node class a receiver expression denotes, if any."""
        cls = ctx.model._arg_class(function, recv)
        if cls is not None and cls.qualname in ctx.per_node:
            return cls
        return None

    @staticmethod
    def _self_attr_expr(expr: ast.expr) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None


class NodeAliasRule(ConcurrencyRule):
    """REP300: node state crosses nodes only through declared seams."""

    code = "REP300"
    name = "cross-node-alias"
    summary = (
        "node-owned object aliased into another node's state without "
        "passing a Network/engine touchpoint; partitioned execution "
        "requires every cross-node edge to be a serializable seam"
    )

    def run_concurrency(self, ctx: ConcurrencyContext, add: AddFn) -> None:
        for method in self._per_node_methods(ctx):
            # Construction-time wiring (attach_recovery et al.) and
            # declared touchpoints are the sanctioned alias points.
            if method.name == "__init__" or ctx.is_touchpoint(method):
                continue
            for node in ast.walk(method.node):
                if isinstance(node, ast.Call):
                    self._check_call(ctx, method, node, add)
                elif isinstance(node, ast.Assign):
                    self._check_store(ctx, method, node, add)

    def _check_call(
        self,
        ctx: ConcurrencyContext,
        method: FunctionInfo,
        node: ast.Call,
        add: AddFn,
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in BOUNDARY_ATTRS:
            return  # the declared seam
        recv = func.value
        if self._self_attr_expr(recv) is not None or not isinstance(
            recv, ast.Name
        ):
            return  # own collaborators are same-node wiring
        peer = self._receiver_class(ctx, method, recv)
        if peer is None:
            return
        callee = peer.mro_method(func.attr)
        if callee is None or ctx.is_touchpoint(callee):
            return
        summaries = ctx.model.param_summary(callee.qualname)
        if not summaries:
            return
        positional = _positional_params(callee)
        for param, arg in _map_call_args(node, positional):
            attr = self._self_attr_expr(arg)
            if attr is None:
                continue  # copies (set(self.x)) and locals are fine
            summary = summaries.get(param)
            if summary is None or not summary.stored:
                continue
            add(
                method.module,
                node,
                self.code,
                f"{method.qualname} hands self.{attr} to "
                f"{peer.name}.{func.attr}(), which stores it on the other "
                "node; a partition cut cannot serialize a live alias — "
                "send a copy through the network/engine seam instead",
            )

    def _check_store(
        self,
        ctx: ConcurrencyContext,
        method: FunctionInfo,
        node: ast.Assign,
        add: AddFn,
    ) -> None:
        attr = self._self_attr_expr(node.value)
        if attr is None:
            return
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id != "self"
            ):
                continue
            peer = self._receiver_class(ctx, method, target.value)
            if peer is None:
                continue
            add(
                method.module,
                node,
                self.code,
                f"{method.qualname} stores self.{attr} directly into "
                f"{peer.name}.{target.attr}; node state must cross nodes "
                "through the network/engine seam, not by aliasing",
            )


class SharedMutationRule(ConcurrencyRule):
    """REP301: nothing mutable is silently shared across node instances."""

    code = "REP301"
    name = "shared-service-mutation"
    summary = (
        "one mutable object is captured by every instance of a per-node "
        "class and mutated through it, without being declared a shared "
        "service; under partitioned execution that mutation is a "
        "cross-partition race"
    )

    def run_concurrency(self, ctx: ConcurrencyContext, add: AddFn) -> None:
        seen: Set[tuple] = set()
        for capture in ctx.captures:
            if not capture.mutated:
                continue  # read-only sharing partitions trivially
            if capture.arg_class is not None and ctx.unconfined_layer(
                capture.arg_class
            ):
                continue  # the engine/transport substrate is the seam
            if ctx.declared_shared(capture):
                continue
            construction = capture.construction
            key = (
                construction.function.module.rel,
                getattr(construction.node, "lineno", 0),
                capture.param,
            )
            if key in seen:
                continue
            seen.add(key)
            homes = ", ".join(
                f"{qualname.rsplit('.', 1)[-1]}.{attr}"
                for qualname, attr in sorted(capture.attr_homes)
            )
            what = (
                capture.arg_class.name
                if capture.arg_class is not None
                else f"argument '{capture.param}'"
            )
            add(
                construction.function.module,
                construction.node,
                self.code,
                f"{construction.function.qualname} constructs "
                f"{construction.cls.name} in a loop and hands one {what} "
                f"to every instance (captured at {homes}), which mutates "
                "it; replicate the object per node or declare it under "
                "[tool.repro-lint.ownership] shared-services",
            )


class IdentityOrderRule(ConcurrencyRule):
    """REP302: no identity-derived ordering near the scheduler."""

    code = "REP302"
    name = "identity-ordering"
    summary = (
        "ordering decision derived from id()/hash() in code with "
        "sim-schedule effects; memory addresses and hash seeds differ "
        "across processes, so a partitioned run cannot reproduce the "
        "(time, seq) merge order — use stable protocol identifiers"
    )

    _ORDER_CALLS = frozenset({"sorted", "min", "max"})
    _IDENTITY = frozenset({"id", "hash"})

    def run_concurrency(self, ctx: ConcurrencyContext, add: AddFn) -> None:
        for qualname in sorted(ctx.effects.functions):
            record = ctx.effects.functions[qualname]
            if SIM_SCHEDULE not in record.effects:
                continue
            function = record.function
            for node in ast.walk(function.node):
                if isinstance(node, ast.Call):
                    self._check_call(function.module, function, node, add)
                elif isinstance(node, ast.Compare):
                    self._check_compare(function.module, function, node, add)

    def _identity_expr(self, expr: ast.expr) -> Optional[str]:
        """'id'/'hash' when ``expr`` is such a call (or a lambda making
        one), else ``None``."""
        if isinstance(expr, ast.Name) and expr.id in self._IDENTITY:
            return expr.id
        if isinstance(expr, ast.Lambda):
            for sub in ast.walk(expr.body):
                name = self._call_name(sub)
                if name is not None:
                    return name
            return None
        return self._call_name(expr)

    def _call_name(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._IDENTITY
            and node.args
            and not isinstance(node.args[0], ast.Constant)
        ):
            return node.func.id
        return None

    def _check_call(
        self,
        module: ModuleInfo,
        function: FunctionInfo,
        node: ast.Call,
        add: AddFn,
    ) -> None:
        func = node.func
        is_order = (
            isinstance(func, ast.Name) and func.id in self._ORDER_CALLS
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not is_order:
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            name = self._identity_expr(kw.value)
            if name is not None:
                add(
                    module,
                    node,
                    self.code,
                    f"{function.qualname} orders by {name}() while holding "
                    "sim-schedule effects; identity differs across "
                    "processes — key on node_id/EventId/sequence numbers",
                )

    def _check_compare(
        self,
        module: ModuleInfo,
        function: FunctionInfo,
        node: ast.Compare,
        add: AddFn,
    ) -> None:
        if not any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
            for op in node.ops
        ):
            return
        for operand in (node.left, *node.comparators):
            name = self._call_name(operand)
            if name is not None:
                add(
                    module,
                    node,
                    self.code,
                    f"{function.qualname} compares {name}() results while "
                    "holding sim-schedule effects; identity-derived order "
                    "cannot replay across partitions — compare stable "
                    "protocol identifiers",
                )
                return  # one finding per comparison, not per operand


class PayloadClosureRule(ConcurrencyRule):
    """REP303: boundary payload graphs stay serializable."""

    code = "REP303"
    name = "payload-closure"
    summary = (
        "object handed to a boundary send has an attribute bound to the "
        "engine/transport substrate or a per-node instance; a partition "
        "cut must pickle the payload graph, and a live engine or node "
        "reference cannot cross that boundary (extends REP104 from "
        "callables to payloads)"
    )

    def run_concurrency(self, ctx: ConcurrencyContext, add: AddFn) -> None:
        for method in self._per_node_methods(ctx):
            for node in ast.walk(method.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in BOUNDARY_SEND_ATTRS
                ):
                    continue
                for arg in node.args:
                    payload = self._payload_class(ctx, method, arg)
                    if payload is None:
                        continue
                    offender = self._closure_over(ctx, payload)
                    if offender is None:
                        continue
                    attr, bound, why = offender
                    add(
                        method.module,
                        node,
                        self.code,
                        f"{method.qualname} sends a {payload.name} whose "
                        f"attribute '{attr}' is bound to {bound.name} "
                        f"({why}); the payload graph must pickle across a "
                        "partition cut — carry ids, not live references",
                    )

    @staticmethod
    def _payload_class(
        ctx: ConcurrencyContext, method: FunctionInfo, arg: ast.expr
    ) -> Optional[ClassInfo]:
        if isinstance(arg, ast.Call):
            resolved = resolve_call_target(
                ctx.project, method.module, method.cls, arg
            )
            if isinstance(resolved, ClassInfo):
                return resolved
            return None
        return ctx.model._arg_class(method, arg)

    def _closure_over(self, ctx: ConcurrencyContext, payload: ClassInfo):
        bindings = ctx.model.attr_bindings.get(payload.qualname, {})
        for attr in sorted(bindings):
            binding = bindings[attr]
            if binding.startswith("<"):
                continue
            bound = ctx.project.classes.get(binding)
            if bound is None:
                continue
            if self._value_like(ctx, bound):
                continue  # enums/frozen/immutable value objects pickle fine
            layer = ctx.unconfined_layer(bound)
            if layer is not None:
                top = (
                    ctx.config.layers.order[-1]
                    if ctx.config.layers.order
                    else None
                )
                if layer != top:
                    return attr, bound, f"the {layer} substrate"
            if binding in ctx.per_node:
                return attr, bound, "a per-node instance"
        return None

    @staticmethod
    def _value_like(ctx: ConcurrencyContext, bound: ClassInfo) -> bool:
        """Enums, frozen dataclasses, and classes that never mutate their
        own state are serializable value objects, not live references."""
        from .arch_rules import _SLOTS_EXEMPT_BASES
        from .ownership import _is_frozen_dataclass

        for name in bound.ancestry_names():
            if name.split(".")[-1].endswith(_SLOTS_EXEMPT_BASES):
                return True
        if _is_frozen_dataclass(bound):
            return True
        return not ctx.model.self_mutators.get(
            bound.qualname
        ) and not ctx.model.mutated_attrs.get(bound.qualname)


class BlockingReachabilityRule(ConcurrencyRule):
    """REP304: protocol code never reaches wall-clock or blocking I/O."""

    code = "REP304"
    name = "blocking-reachability"
    summary = (
        "wall-clock or blocking call (time.sleep, sync socket/file I/O) "
        "is reachable from protocol-layer code; a cooperative asyncio "
        "backend would stall the whole event loop on it — route timing "
        "through the engine and I/O through the transport"
    )

    _EFFECTS = frozenset({BLOCKING, WALL_CLOCK})

    def run_concurrency(self, ctx: ConcurrencyContext, add: AddFn) -> None:
        for qualname in sorted(ctx.effects.functions):
            record = ctx.effects.functions[qualname]
            function = record.function
            if not ctx.is_confined(function.module.name):
                continue
            hits = sorted(record.effects & self._EFFECTS)
            if not hits or ctx.is_touchpoint(function):
                continue
            direct = sorted(set(hits) & record.direct)
            if direct:
                effect = direct[0]
                site = record.sites.get(effect, function.node)
                how = f"makes a direct {effect} call"
            else:
                effect = hits[0]
                site = function.node
                how = (
                    f"reaches {', '.join(hits)} via "
                    f"{record.via.get(effect, 'a callee')}()"
                )
            add(
                function.module,
                site,
                self.code,
                f"{qualname} ({ctx.arch.layer_map.layer_of_module(function.module.name)} "
                f"layer) {how}; protocol code must stay non-blocking for "
                "the asyncio backend — use engine time and transport I/O",
            )


class ChainedEmissionRule(ConcurrencyRule):
    """REP305: set order must not reach the wire through a call chain."""

    code = "REP305"
    name = "chained-ordered-emission"
    summary = (
        "iteration over a set feeds a callee that sends or schedules; "
        "REP205 catches the local case, this catches the order escaping "
        "through a call chain — iterate sorted(...)"
    )

    _helper = OrderedEmissionRule()

    def run_concurrency(self, ctx: ConcurrencyContext, add: AddFn) -> None:
        class_sets = {}
        for module in ctx.project.modules.values():
            for function in self._module_functions(module):
                owner = function.cls
                if owner is not None and owner.qualname not in class_sets:
                    class_sets[owner.qualname] = self._helper._self_set_attrs(
                        owner
                    )
                self_sets = (
                    class_sets.get(owner.qualname, set()) if owner else set()
                )
                self._check_function(ctx, module, function, self_sets, add)

    @staticmethod
    def _module_functions(module: ModuleInfo) -> Iterable[FunctionInfo]:
        yield from module.functions.values()
        for cls in module.classes.values():
            yield from cls.methods.values()

    def _check_function(
        self,
        ctx: ConcurrencyContext,
        module: ModuleInfo,
        function: FunctionInfo,
        self_sets: Set[str],
        add: AddFn,
    ) -> None:
        local_sets = self._helper._local_sets(module, function.node)
        if not local_sets and not self_sets:
            return
        for node in ast.walk(function.node):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not self._helper._is_set_expr(
                node.iter, local_sets, self_sets
            ):
                continue
            if self._helper._emits(module, node.body):
                continue  # the local case is REP205's finding
            emitter = self._emitting_callee(ctx, function, node.body)
            if emitter is None:
                continue
            callee, effect = emitter
            add(
                module,
                node,
                self.code,
                f"{function.qualname} iterates a set and calls "
                f"{callee}() inside the loop, which has {effect} effects; "
                "the emission order inherits the set's hash order — "
                "iterate sorted(...)",
            )

    @staticmethod
    def _emitting_callee(
        ctx: ConcurrencyContext,
        function: FunctionInfo,
        body: Iterable[ast.stmt],
    ):
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolve_call_target(
                    ctx.project, function.module, function.cls, node
                )
                callee: Optional[FunctionInfo] = None
                if isinstance(resolved, FunctionInfo):
                    callee = resolved
                elif isinstance(resolved, ClassInfo):
                    callee = resolved.mro_method("__init__")
                if callee is None:
                    continue
                record = ctx.effects.of(callee.qualname)
                if record is None:
                    continue
                for effect in (NET_SEND, SIM_SCHEDULE):
                    if effect in record.effects:
                        return callee.qualname, effect
        return None


class NonAtomicWriteRule(ConcurrencyRule):
    """REP306: durable artifacts are written via write-then-rename.

    The registry of durable modules lives in ``[tool.repro-lint.durable]``
    (path or dotted-name fnmatch patterns); without it the rule is inert.
    A write call (``open`` in a ``w``/``a``/``x`` mode, ``.write_text``/
    ``.write_bytes``, ``json.dump``/``pickle.dump``) inside a durable
    module must share its scope — the enclosing function, or the module
    body for top-level code — with a rename (``os.replace``/``os.rename``/
    ``shutil.move`` or a one-argument ``.replace(...)``/``.rename(...)``):
    the write-to-temp-then-rename idiom that makes a ``kill -9`` mid-write
    leave either the old artifact or the new one, never a torn file.
    """

    code = "REP306"
    name = "non-atomic-write"
    summary = (
        "file written in a declared durable module with no rename in the "
        "same scope; a crash mid-write leaves a torn artifact — write to "
        "a temporary path and os.replace() it into place"
    )

    _OPEN_FUNCS = frozenset({"open", "io.open"})
    _WRITE_METHODS = frozenset({"write_text", "write_bytes"})
    _DUMP_FUNCS = frozenset({"json.dump", "pickle.dump", "marshal.dump"})
    _RENAME_FUNCS = frozenset({"os.replace", "os.rename", "shutil.move"})
    _RENAME_METHODS = frozenset({"replace", "rename"})
    _WRITE_MODES = "wax"

    def run_concurrency(self, ctx: ConcurrencyContext, add: AddFn) -> None:
        durable = ctx.config.durable
        if not durable.modules:
            return
        for name in sorted(ctx.project.modules):
            module = ctx.project.modules[name]
            if durable.is_durable(module.rel, module.name):
                self._scan_scope(module, list(module.tree.body), add)

    # -- scope analysis -------------------------------------------------
    def _scan_scope(
        self, module: ModuleInfo, body: List[ast.AST], add: AddFn
    ) -> None:
        """Check one scope's statements; recurse into nested functions.

        A function containing both the write and the rename (the atomic
        helper itself) is legal; a bare write whose rename lives in some
        *other* scope is exactly the torn-artifact hazard REP306 exists
        to flag, so scopes are judged independently.
        """
        writes: List[tuple] = []
        renamed = False
        stack = list(body)
        nested: List[ast.AST] = []
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                nested.append(node)
                continue
            if isinstance(node, ast.Call):
                what = self._write_kind(module, node)
                if what is not None:
                    writes.append((node, what))
                if self._is_rename(module, node):
                    renamed = True
            stack.extend(ast.iter_child_nodes(node))
        if not renamed:
            for call, what in writes:
                add(
                    module,
                    call,
                    self.code,
                    f"{module.name} is a declared durable module but {what} "
                    "has no os.replace/rename in its scope; a crash "
                    "mid-write leaves a torn artifact on disk — write the "
                    "full payload to a temporary path and atomically "
                    "rename it into place",
                )
        for fn in nested:
            fn_body = fn.body if isinstance(fn.body, list) else [fn.body]
            self._scan_scope(module, list(fn_body), add)

    # -- call classification --------------------------------------------
    @staticmethod
    def _resolve(module: ModuleInfo, node: ast.expr) -> Optional[str]:
        parts = dotted_parts(node)
        if not parts:
            return None
        head = module.imports.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])

    def _write_kind(
        self, module: ModuleInfo, node: ast.Call
    ) -> Optional[str]:
        func = node.func
        target = self._resolve(module, func)
        is_open_func = target in self._OPEN_FUNCS
        is_open_method = (
            not is_open_func
            and isinstance(func, ast.Attribute)
            and func.attr == "open"
        )
        if is_open_func or is_open_method:
            # builtin open(path, mode); Path.open(mode) has no path arg.
            mode = self._literal_mode(node, 0 if is_open_method else 1)
            if mode is not None and mode[:1] in self._WRITE_MODES:
                return f'open(..., "{mode}")'
            return None
        if isinstance(func, ast.Attribute) and func.attr in self._WRITE_METHODS:
            return f".{func.attr}(...)"
        if target in self._DUMP_FUNCS:
            return f"{target}(...)"
        return None

    @staticmethod
    def _literal_mode(node: ast.Call, index: int) -> Optional[str]:
        mode: Optional[ast.expr] = (
            node.args[index] if len(node.args) > index else None
        )
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None

    def _is_rename(self, module: ModuleInfo, node: ast.Call) -> bool:
        if self._resolve(module, node.func) in self._RENAME_FUNCS:
            return True
        func = node.func
        # Path.replace(target)/Path.rename(target) take exactly one
        # argument; str.replace(old, new) takes two, so it never counts.
        return (
            isinstance(func, ast.Attribute)
            and func.attr in self._RENAME_METHODS
            and len(node.args) == 1
            and not node.keywords
        )


CONCURRENCY_RULES: List[ConcurrencyRule] = [
    NodeAliasRule(),
    SharedMutationRule(),
    IdentityOrderRule(),
    PayloadClosureRule(),
    BlockingReachabilityRule(),
    ChainedEmissionRule(),
    NonAtomicWriteRule(),
]


def concurrency_codes() -> List[str]:
    return [rule.code for rule in CONCURRENCY_RULES]
