"""AST traversal: parse one file, resolve imports, dispatch nodes to rules.

:class:`FileContext` pre-scans every ``import``/``from ... import`` in the
file (including function-local ones) and offers ``resolve_call``: given a
``Call`` node it returns a canonical dotted name such as ``random.choice``,
``datetime.datetime.now`` or ``id`` — undoing aliases like
``import random as rnd`` or ``from time import perf_counter as clock``.

The dispatcher walks the tree exactly once and fans each node out to the
rule hooks, collecting findings for the codes enabled on this file.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .config import HotPathConfig
from .findings import Finding, LintError
from .rules import RULES, Rule
from .suppress import parse_suppressions

__all__ = ["FileContext", "lint_file"]


class FileContext:
    """Per-file state shared by every rule: paths and import aliases."""

    def __init__(
        self,
        rel_path: str,
        tree: ast.AST,
        hot_path: Optional[HotPathConfig] = None,
    ) -> None:
        self.rel_path = rel_path
        #: the REP007 registry (``None``/empty leaves the rule inert).
        self.hot_path = hot_path
        #: alias -> module, e.g. {"rnd": "random", "time": "time"}
        self.module_aliases: Dict[str, str] = {}
        #: local name -> "module.original", e.g. {"clock": "time.perf_counter"}
        self.from_imports: Dict[str, str] = {}
        #: direct method node -> "Class.method" (nested defs excluded: only
        #: methods can be hot-path entry points bound at construction).
        self._method_qualnames: Dict[ast.AST, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._method_qualnames[item] = f"{node.name}.{item.name}"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def method_qualname(self, node: ast.AST) -> Optional[str]:
        """``Class.method`` when ``node`` is a direct method, else ``None``."""
        return self._method_qualnames.get(node)

    def resolve_name(self, name: str) -> str:
        if name in self.from_imports:
            return self.from_imports[name]
        if name in self.module_aliases:
            return self.module_aliases[name]
        return name

    def resolve_dotted(self, node: ast.expr) -> Optional[str]:
        """``a.b.c`` -> canonical dotted string, or None for anything else."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.resolve_name(node.id))
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve_dotted(call.func)


class _Dispatcher(ast.NodeVisitor):
    """Single-pass visitor fanning nodes out to every enabled rule."""

    def __init__(self, ctx: FileContext, rules: Iterable[Rule]) -> None:
        self.ctx = ctx
        self.rules = list(rules)
        #: (code, line, col, end_line, message)
        self.raw: List[Tuple[str, int, int, int, str]] = []

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.raw.append(
            (
                code,
                line,
                getattr(node, "col_offset", 0),
                getattr(node, "end_lineno", None) or line,
                message,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        for rule in self.rules:
            rule.check_call(self.ctx, node, self._add)
        self.generic_visit(node)

    def _visit_loop(self, node) -> None:
        for rule in self.rules:
            rule.check_iter(self.ctx, node, node.iter, self._add)
        self.generic_visit(node)

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            for rule in self.rules:
                rule.check_iter(self.ctx, node, generator.iter, self._add)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _visit_function(self, node) -> None:
        for rule in self.rules:
            rule.check_function(self.ctx, node, self._add)
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function


def lint_file(
    path: Path,
    rel_path: str,
    enabled_codes: Set[str],
    hot_path: Optional[HotPathConfig] = None,
) -> Tuple[List[Finding], Optional[LintError]]:
    """Lint one file; returns (findings, error).

    ``enabled_codes`` restricts which rules run; suppression comments are
    applied afterwards so a suppressed finding never escapes this function.
    ``hot_path`` is the REP007 registry from ``[tool.repro-lint.hot-path]``.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [], LintError(path=rel_path, message=str(exc))
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [], LintError(
            path=rel_path, message=f"syntax error on line {exc.lineno}: {exc.msg}"
        )

    ctx = FileContext(rel_path, tree, hot_path)
    rules = [rule for rule in RULES if rule.code in enabled_codes]
    dispatcher = _Dispatcher(ctx, rules)
    dispatcher.visit(tree)

    # A suppression comment on any line the violating node spans counts, so
    # the directive also works on the closing paren of a multi-line call;
    # passing the tree lets a directive on a `def` line cover its decorators.
    suppressions = parse_suppressions(source, tree)
    findings = [
        Finding(path=rel_path, line=line, col=col, code=code, message=message)
        for code, line, col, end_line, message in dispatcher.raw
        if not suppressions.is_suppressed_span(code, line, end_line)
    ]
    findings.sort()
    return findings, None
