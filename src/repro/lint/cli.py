"""Command-line entry point.

::

    python -m repro.lint src benchmarks
    repro-lint --format=json src
    repro-lint --select REP001,REP002 --isolated tests/lint/fixtures
    repro-lint --analysis src benchmarks examples   # + whole-program REP1xx
    repro-lint --analysis --format=sarif src > lint.sarif

Exit status: **0** clean, **1** findings, **2** errors (unreadable or
syntactically-invalid files, bad arguments).

The whole-program analysis (REP100–REP105, REP200–REP205, REP300–REP306)
runs when ``--analysis`` is given, when ``analysis = true`` is set in
``[tool.repro-lint]``, or when one of its codes is explicitly selected;
``--no-analysis`` always wins.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from .analysis import (
    ANALYSIS_RULES,
    analysis_codes,
    build_arch_report,
    build_ownership_report,
    run_analysis,
)
from .config import LintConfig, config_for_paths, load_config
from .findings import Finding, LintError
from .report import (
    render_arch_json,
    render_arch_text,
    render_json,
    render_ownership_json,
    render_ownership_text,
    render_sarif,
    render_text,
)
from .rules import RULES, all_codes
from .walker import lint_file

__all__ = ["main", "build_parser", "lint_paths", "arch_report_paths",
           "ownership_report_paths", "LintResult"]


class LintResult:
    """Aggregate outcome of one lint run."""

    def __init__(
        self,
        findings: List[Finding],
        errors: List[LintError],
        files_checked: int,
        warnings: Optional[List[str]] = None,
    ) -> None:
        self.findings = findings
        self.errors = errors
        self.files_checked = files_checked
        self.warnings = warnings if warnings is not None else []

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def _collect_files(
    paths: Sequence[Path], config: LintConfig
) -> Tuple[List[Path], List[str]]:
    files: List[Path] = []
    warnings: List[str] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix != ".py":
            warnings.append(f"{path}: skipped (not a Python file)")
            continue
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            if config.is_excluded(config.rel_path(candidate)):
                continue
            files.append(candidate)
    return files, warnings


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    *,
    isolated: bool = False,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    analysis: Optional[bool] = None,
) -> LintResult:
    """Programmatic front door: lint ``paths`` and aggregate the results.

    ``isolated`` skips pyproject discovery (fixtures and tests use this);
    ``select``/``ignore`` are applied on top of whatever the config enables.
    ``analysis`` forces the whole-program REP1xx pass on (True) or off
    (False); ``None`` defers to the config and to whether a REP1xx code was
    selected.
    """
    paths = [Path(p) for p in paths]
    if config is None:
        config = LintConfig() if isolated else config_for_paths(paths)

    whole_program = set(analysis_codes())  # REP1xx, REP2xx, REP3xx
    if analysis is None:
        analysis = config.analysis or bool(whole_program & set(select))

    # A missing path is an error, but it must not hide findings from the
    # paths that do exist: lint those and aggregate both.
    errors: List[LintError] = [
        LintError(path=str(p), message="no such file or directory")
        for p in paths
        if not p.exists()
    ]
    paths = [p for p in paths if p.exists()]

    codes = all_codes() + analysis_codes()
    findings: List[Finding] = []
    files, warnings = _collect_files(paths, config)

    def enabled_for(rel: str) -> Set[str]:
        enabled = config.enabled_codes(rel, codes)
        if select:
            enabled &= set(select)
        enabled -= set(ignore)
        return enabled

    for path in files:
        rel = config.rel_path(path)
        file_findings, error = lint_file(
            path, rel, enabled_for(rel), hot_path=config.hot_path
        )
        findings.extend(file_findings)
        if error is not None:
            errors.append(error)
    if analysis:
        pairs = [(path, config.rel_path(path)) for path in files]
        findings.extend(run_analysis(pairs, enabled_for, config))
    findings.sort()
    errors.sort()
    return LintResult(findings, errors, len(files), warnings)


def arch_report_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    *,
    isolated: bool = False,
) -> dict:
    """Programmatic ``--arch-report``: the resolved layer graph and
    per-module effect summary for ``paths``, as plain (JSON-able) data."""
    paths = [Path(p) for p in paths]
    if config is None:
        config = LintConfig() if isolated else config_for_paths(paths)
    files, _warnings = _collect_files([p for p in paths if p.exists()], config)
    pairs = [(path, config.rel_path(path)) for path in files]
    return build_arch_report(pairs, config)


def ownership_report_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    *,
    isolated: bool = False,
) -> dict:
    """Programmatic ``--ownership-report``: the node-ownership graph,
    cross-node boundary edges, shared services, and candidate
    partition-cut seams for ``paths``, as plain (JSON-able) data."""
    paths = [Path(p) for p in paths]
    if config is None:
        config = LintConfig() if isolated else config_for_paths(paths)
    files, _warnings = _collect_files([p for p in paths if p.exists()], config)
    pairs = [(path, config.rel_path(path)) for path in files]
    return build_ownership_report(pairs, config)


def _parse_codes(raw: Optional[str]) -> Tuple[str, ...]:
    if not raw:
        return ()
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & protocol-invariant linter for the "
            "epidemic pub-sub reproduction (per-file rules REP001-REP007; "
            "whole-program rules REP100-REP105, architecture rules "
            "REP200-REP205, and concurrency-safety rules REP300-REP306 "
            "via --analysis)"
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        help="alias for --select (merged with it)",
    )
    analysis_group = parser.add_mutually_exclusive_group()
    analysis_group.add_argument(
        "--analysis",
        action="store_true",
        help="run the whole-program REP100-REP105 analysis too",
    )
    analysis_group.add_argument(
        "--no-analysis",
        action="store_true",
        help="never run the whole-program analysis (overrides config)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from",
    )
    parser.add_argument(
        "--isolated",
        action="store_true",
        help="ignore any pyproject.toml configuration",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its summary and exit",
    )
    parser.add_argument(
        "--arch-report",
        action="store_true",
        help=(
            "emit the resolved layer graph and per-module effect summary "
            "instead of linting (honors --format text/json)"
        ),
    )
    parser.add_argument(
        "--ownership-report",
        action="store_true",
        help=(
            "emit the node-ownership graph, cross-node boundary edges, and "
            "candidate partition-cut seams instead of linting (honors "
            "--format text/json)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in (*RULES, *ANALYSIS_RULES):
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: repro-lint src benchmarks)")

    if args.arch_report or args.ownership_report:
        config = None
        builder = (
            arch_report_paths if args.arch_report else ownership_report_paths
        )
        try:
            if args.config:
                config_path = Path(args.config)
                if not config_path.is_file():
                    print(
                        f"error: config file not found: {config_path}",
                        file=sys.stderr,
                    )
                    return 2
                config = load_config(config_path)
            report = builder(
                [Path(p) for p in args.paths], config, isolated=args.isolated
            )
        except RuntimeError as exc:  # no TOML parser on this interpreter
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.arch_report:
            render_as_json, render_as_text = render_arch_json, render_arch_text
        else:
            render_as_json = render_ownership_json
            render_as_text = render_ownership_text
        if args.format == "json":
            print(render_as_json(report))
        else:  # text (sarif has no report schema; text reads best)
            print(render_as_text(report))
        return 0

    select = _parse_codes(args.select) + _parse_codes(args.rules)
    ignore = _parse_codes(args.ignore)
    known = all_codes() + analysis_codes()
    unknown = [c for c in (*select, *ignore) if c not in known]
    if unknown:
        parser.error(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(known)})"
        )
    analysis: Optional[bool] = None
    if args.no_analysis:
        analysis = False
    elif args.analysis:
        analysis = True

    config: Optional[LintConfig] = None
    try:
        if args.config:
            config_path = Path(args.config)
            if not config_path.is_file():
                print(
                    f"error: config file not found: {config_path}", file=sys.stderr
                )
                return 2
            config = load_config(config_path)

        result = lint_paths(
            [Path(p) for p in args.paths],
            config,
            isolated=args.isolated,
            select=select,
            ignore=ignore,
            analysis=analysis,
        )
    except RuntimeError as exc:  # no TOML parser on this interpreter
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)

    if args.format == "json":
        print(render_json(result.findings, result.errors, result.files_checked))
    elif args.format == "sarif":
        print(render_sarif(result.findings, result.errors, result.files_checked))
    else:
        print(render_text(result.findings, result.errors, result.files_checked))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
