"""Inline suppression comments.

Two forms are recognised, both anchored on a ``repro-lint:`` marker inside a
comment:

* ``# repro-lint: disable=REP003`` — suppress the listed codes (comma
  separated) on the physical line carrying the comment.  A violation is
  suppressed when the comment sits on *any* line its node spans, so the
  directive may ride on the closing paren of a multi-line call.
* ``# repro-lint: disable-file=REP002`` — suppress the listed codes for the
  whole file.  May appear on any line, conventionally in the module header.

Omitting the ``=CODES`` part (``# repro-lint: disable``) suppresses every
rule.  Suppressions are parsed from the token stream, so a ``repro-lint:``
marker inside a string literal is ignored.

Decorated definitions get one extra courtesy: some violations are attributed
to a *decorator* line (the node of ``@lru_cache(maxsize=None)`` starts on
the ``@`` line, not on ``def``), yet the natural place to write the
directive is the ``def``/``class`` line itself.  When the parsed tree is
supplied, decorator lines *redirect* to their definition line, so a
``# repro-lint: disable=…`` on the ``def`` line also covers findings
anchored on the decorators above it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Optional, Set

__all__ = ["SuppressionMap", "parse_suppressions"]

_ALL = "*"
_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*(?:=\s*(?P<codes>[A-Z0-9_,\s]+))?"
)


class SuppressionMap:
    """Line- and file-level suppressions for one source file."""

    def __init__(self) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.file_level: Set[str] = set()
        #: decorator line → the ``def``/``class`` line it belongs to; a
        #: directive on the definition line covers these lines too.
        self.redirects: Dict[int, int] = {}

    def add_line(self, line: int, codes: Set[str]) -> None:
        self.by_line.setdefault(line, set()).update(codes)

    def add_file(self, codes: Set[str]) -> None:
        self.file_level.update(codes)

    def is_suppressed(self, code: str, line: int) -> bool:
        return self.is_suppressed_span(code, line, line)

    def is_suppressed_span(self, code: str, start: int, end: int) -> bool:
        """True if ``code`` is suppressed on any line in ``start..end``."""
        if _ALL in self.file_level or code in self.file_level:
            return True
        for line, codes in self.by_line.items():
            if start <= line <= end and (_ALL in codes or code in codes):
                return True
        for deco_line, def_line in self.redirects.items():
            if start <= deco_line <= end:
                codes = self.by_line.get(def_line, set())
                if _ALL in codes or code in codes:
                    return True
        return False


def _parse_codes(raw: "str | None") -> Set[str]:
    if raw is None:
        return {_ALL}
    codes = {part.strip() for part in raw.split(",") if part.strip()}
    return codes or {_ALL}


def parse_suppressions(
    source: str, tree: Optional[ast.AST] = None
) -> SuppressionMap:
    """Extract suppression directives from ``source``.

    Tokenisation errors are swallowed: a file that does not tokenise will
    already be reported as a syntax error by the walker, and a best-effort
    (possibly empty) map is fine for it.

    When ``tree`` is given, decorator lines of each decorated definition
    are recorded as redirects to the ``def``/``class`` line, so a directive
    on the definition line also suppresses decorator-anchored findings.
    """
    suppressions = SuppressionMap()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(token.string)
            if match is None:
                continue
            codes = _parse_codes(match.group("codes"))
            if match.group("kind") == "disable-file":
                suppressions.add_file(codes)
            else:
                suppressions.add_line(token.start[0], codes)
    except tokenize.TokenError:
        pass
    if tree is not None:
        for node in ast.walk(tree):
            decorators = getattr(node, "decorator_list", None)
            if not decorators:
                continue
            def_line = node.lineno
            first = min(d.lineno for d in decorators)
            for line in range(first, def_line):
                suppressions.redirects[line] = def_line
    return suppressions
