"""Rendering lint results as human text, machine JSON, or SARIF 2.1.0."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List

from .findings import Finding, LintError

__all__ = ["render_text", "render_json", "render_sarif",
           "render_arch_text", "render_arch_json",
           "render_ownership_text", "render_ownership_json"]


def render_text(findings: List[Finding], errors: List[LintError], files: int) -> str:
    """The classic ``path:line:col: CODE message`` listing plus a summary."""
    lines = [error.render() for error in errors]
    lines.extend(finding.render() for finding in findings)
    if findings or errors:
        by_code = Counter(finding.code for finding in findings)
        breakdown = ", ".join(f"{code}×{n}" for code, n in sorted(by_code.items()))
        summary = f"{len(findings)} finding(s) in {files} file(s)"
        if breakdown:
            summary += f" [{breakdown}]"
        if errors:
            summary += f"; {len(errors)} file(s) could not be linted"
        lines.append(summary)
    else:
        lines.append(f"{files} file(s) clean")
    return "\n".join(lines)


def render_json(findings: List[Finding], errors: List[LintError], files: int) -> str:
    """Stable JSON for CI and tooling: findings, errors, per-code counts."""
    payload = {
        "version": 1,
        "files_checked": files,
        "findings": [finding.to_dict() for finding in findings],
        "errors": [error.to_dict() for error in errors],
        "counts": dict(sorted(Counter(f.code for f in findings).items())),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_catalogue() -> List[Dict[str, object]]:
    """SARIF ``tool.driver.rules`` metadata for all rule families."""
    from .analysis import ANALYSIS_RULES
    from .rules import RULES

    catalogue: List[Dict[str, object]] = []
    for rule in (*RULES, *ANALYSIS_RULES):
        catalogue.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return catalogue


def render_sarif(
    findings: List[Finding], errors: List[LintError], files: int
) -> str:
    """SARIF 2.1.0 for GitHub code scanning.

    Findings become ``results``; files that could not be linted become
    ``toolExecutionNotifications`` so they surface in the run log without
    fabricating a source location.
    """
    rules = _rule_catalogue()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": rule_index.get(finding.code, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    notifications = [
        {
            "level": "error",
            "message": {"text": f"{error.path}: {error.message}"},
        }
        for error in errors
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/LINTING.md",
                        "rules": rules,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Architecture report (repro-lint --arch-report)
# ----------------------------------------------------------------------


def render_arch_json(report: Dict[str, Any]) -> str:
    """Stable JSON form of the architecture report (the CI artifact)."""
    return json.dumps(report, indent=2, sort_keys=True)


def render_arch_text(report: Dict[str, Any]) -> str:
    """Human-readable layer graph + effect summary."""
    lines: List[str] = []
    layers = report["layers"]
    order = layers["order"]
    lines.append("# Layer map (bottom -> top)")
    if not order:
        lines.append("  (no layers declared; see [tool.repro-lint.layers])")
    for layer in order:
        confined = "  [confined]" if layer in layers["confined"] else ""
        lines.append(f"  {layer}{confined}")
        for module in layers["modules"].get(layer, []):
            lines.append(f"    {module}")
    lines.append("")
    lines.append("# Import edges (layer -> layer)")
    for edge in report["imports"]["edges"]:
        lines.append(
            f"  {edge['from']} -> {edge['to']}: {edge['imports']} import(s)"
        )
    violations = report["imports"]["violations"]
    if violations:
        lines.append("")
        lines.append("# Layer violations (upward imports)")
        for violation in violations:
            lines.append(
                f"  {violation['source']}:{violation['line']} "
                f"({violation['source_layer']}) imports "
                f"{violation['target']} ({violation['target_layer']})"
            )
    lines.append("")
    lines.append("# Engine touchpoints")
    for pattern in report["touchpoints"]["declared"]:
        lines.append(f"  declared: {pattern}")
    for qualname in report["touchpoints"]["used"]:
        lines.append(f"  used:     {qualname}")
    lines.append("")
    lines.append("# Per-node / per-event classes")
    for entry in report["per_node_classes"]:
        slots = "__slots__" if entry["slots"] else "NO __slots__"
        lines.append(f"  {entry['class']} [{slots}] — {entry['reason']}")
    lines.append("")
    lines.append("# Per-module effects")
    for module, summary in report["effects"].items():
        lines.append(f"  {module}")
        for effect, owners in summary.items():
            lines.append(f"    {effect}: {', '.join(owners)}")
    lines.append("")
    lines.append(f"{report['files_analyzed']} module(s) analyzed")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Ownership report (repro-lint --ownership-report)
# ----------------------------------------------------------------------


def render_ownership_json(report: Dict[str, Any]) -> str:
    """Stable JSON form of the ownership report (the CI artifact and the
    input the partition/sharding tooling consumes)."""
    return json.dumps(report, indent=2, sort_keys=True)


def render_ownership_text(report: Dict[str, Any]) -> str:
    """Human-readable node-ownership graph + partition seams."""
    lines: List[str] = []
    lines.append("# Node ownership (per-node classes)")
    for entry in report["per_node_classes"]:
        lines.append(f"  {entry['class']} — {entry['reason']}")
        for attr, owner in entry["owners"].items():
            lines.append(f"    .{attr}: {owner}")
    lines.append("")
    lines.append("# Cross-node edges (boundary calls)")
    for edge in report["cross_node_edges"]:
        lines.append(
            f"  {edge['function']}:{edge['line']} "
            f"-> {edge['touchpoint']} [{edge['kind']}]"
        )
    lines.append("")
    lines.append("# Shared services (one object, every node)")
    if not report["shared_services"]:
        lines.append("  (none)")
    for service in report["shared_services"]:
        if service["substrate"]:
            status = "substrate"
        elif service["declared"]:
            status = "declared"
        else:
            status = "UNDECLARED"
        mutated = "mutated" if service["mutated"] else "read-only"
        lines.append(
            f"  {service['object']} -> {service['constructed']} "
            f"({mutated}, {status})"
        )
        lines.append(
            f"    at {service['at']}:{service['line']}, captured at "
            f"{', '.join(service['captured_at'])}"
        )
    lines.append("")
    lines.append("# Partition-cut seams")
    seams = report["partition_seams"]
    for pattern in seams["declared_touchpoints"]:
        lines.append(f"  touchpoint: {pattern}")
    for attr in seams["boundary_attrs_used"]:
        lines.append(f"  boundary:   .{attr}()")
    for name in seams["shared_services"]:
        lines.append(f"  replicate-or-centralize: {name}")
    for name in seams["undeclared_shared_mutable"]:
        lines.append(f"  UNRESOLVED shared mutable: {name}")
    lines.append("")
    lines.append(f"{report['files_analyzed']} module(s) analyzed")
    return "\n".join(lines)
