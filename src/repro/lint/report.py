"""Rendering lint results as human text, machine JSON, or SARIF 2.1.0."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List

from .findings import Finding, LintError

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(findings: List[Finding], errors: List[LintError], files: int) -> str:
    """The classic ``path:line:col: CODE message`` listing plus a summary."""
    lines = [error.render() for error in errors]
    lines.extend(finding.render() for finding in findings)
    if findings or errors:
        by_code = Counter(finding.code for finding in findings)
        breakdown = ", ".join(f"{code}×{n}" for code, n in sorted(by_code.items()))
        summary = f"{len(findings)} finding(s) in {files} file(s)"
        if breakdown:
            summary += f" [{breakdown}]"
        if errors:
            summary += f"; {len(errors)} file(s) could not be linted"
        lines.append(summary)
    else:
        lines.append(f"{files} file(s) clean")
    return "\n".join(lines)


def render_json(findings: List[Finding], errors: List[LintError], files: int) -> str:
    """Stable JSON for CI and tooling: findings, errors, per-code counts."""
    payload = {
        "version": 1,
        "files_checked": files,
        "findings": [finding.to_dict() for finding in findings],
        "errors": [error.to_dict() for error in errors],
        "counts": dict(sorted(Counter(f.code for f in findings).items())),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_catalogue() -> List[Dict[str, object]]:
    """SARIF ``tool.driver.rules`` metadata for both rule families."""
    from .analysis.rules import ANALYSIS_RULES
    from .rules import RULES

    catalogue: List[Dict[str, object]] = []
    for rule in (*RULES, *ANALYSIS_RULES):
        catalogue.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return catalogue


def render_sarif(
    findings: List[Finding], errors: List[LintError], files: int
) -> str:
    """SARIF 2.1.0 for GitHub code scanning.

    Findings become ``results``; files that could not be linted become
    ``toolExecutionNotifications`` so they surface in the run log without
    fabricating a source location.
    """
    rules = _rule_catalogue()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": rule_index.get(finding.code, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    notifications = [
        {
            "level": "error",
            "message": {"text": f"{error.path}: {error.message}"},
        }
        for error in errors
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/LINTING.md",
                        "rules": rules,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
