"""Rendering lint results as human text or machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from .findings import Finding, LintError

__all__ = ["render_text", "render_json"]


def render_text(findings: List[Finding], errors: List[LintError], files: int) -> str:
    """The classic ``path:line:col: CODE message`` listing plus a summary."""
    lines = [error.render() for error in errors]
    lines.extend(finding.render() for finding in findings)
    if findings or errors:
        by_code = Counter(finding.code for finding in findings)
        breakdown = ", ".join(f"{code}×{n}" for code, n in sorted(by_code.items()))
        summary = f"{len(findings)} finding(s) in {files} file(s)"
        if breakdown:
            summary += f" [{breakdown}]"
        if errors:
            summary += f"; {len(errors)} file(s) could not be linted"
        lines.append(summary)
    else:
        lines.append(f"{files} file(s) clean")
    return "\n".join(lines)


def render_json(findings: List[Finding], errors: List[LintError], files: int) -> str:
    """Stable JSON for CI and tooling: findings, errors, per-code counts."""
    payload = {
        "version": 1,
        "files_checked": files,
        "findings": [finding.to_dict() for finding in findings],
        "errors": [error.to_dict() for error in errors],
        "counts": dict(sorted(Counter(f.code for f in findings).items())),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
