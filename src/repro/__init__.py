"""repro -- Epidemic Algorithms for Reliable Content-Based Publish-Subscribe.

A from-scratch Python reproduction of Costa, Migliavacca, Picco, Cugola,
*"Epidemic Algorithms for Reliable Content-Based Publish-Subscribe: An
Evaluation"* (ICDCS 2004): a discrete-event simulator, a content-based
publish-subscribe substrate with subscription forwarding on an unrooted
tree overlay, and the paper's epidemic recovery algorithms (push,
subscriber-based pull, publisher-based pull, combined pull, plus the
random-routing controls), together with the full evaluation harness.

Quickstart
----------
>>> from repro import SimulationConfig, run_scenario
>>> config = SimulationConfig(
...     n_dispatchers=20, publish_rate=10, sim_time=5.0,
...     algorithm="combined-pull", seed=7,
... )
>>> result = run_scenario(config)
>>> result.delivery_rate > result.baseline_rate
True

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
reproduction of every figure of the paper's evaluation.
"""

from repro.campaign import run_campaign
from repro.scenarios.config import SimulationConfig
from repro.scenarios.builder import Simulation
from repro.scenarios.results import RunResult
from repro.scenarios.runner import run_many, run_scenario
from repro.recovery import ALGORITHMS, PAPER_ALGORITHMS, create_recovery
from repro.faults import FaultPlan
from repro.recovery.degrade import DegradationConfig
from repro.pubsub.system import PubSubSystem
from repro.pubsub.event import Event, EventId
from repro.sim.engine import Simulator

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "Simulation",
    "RunResult",
    "run_scenario",
    "run_many",
    "run_campaign",
    "ALGORITHMS",
    "PAPER_ALGORITHMS",
    "create_recovery",
    "FaultPlan",
    "DegradationConfig",
    "PubSubSystem",
    "Event",
    "EventId",
    "Simulator",
    "__version__",
]
