"""Figure 4 (bottom): effect of the gossip interval T on delivery.

Paper: T swept from 0.01 s to 0.055 s.  Subscriber-based pull has a limit
at about 78 %; push and combined pull are the best solutions, with push
improving much faster as gossip rounds become more frequent, and the
combined pull holding up better as the interval between rounds grows.
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig4_interval_sweep


def test_fig4_gossip_interval(benchmark):
    result = run_once(benchmark, fig4_interval_sweep)
    curves = result.curves

    # Fastest gossip (first x) vs slowest (last x).
    for name in ("push", "combined-pull"):
        fastest, slowest = curves[name][0], curves[name][-1]
        # More frequent gossip never hurts delivery materially.
        assert fastest >= slowest - 0.01, name

    # Push is the more interval-sensitive algorithm.
    push_span = curves["push"][0] - curves["push"][-1]
    combined_span = curves["combined-pull"][0] - curves["combined-pull"][-1]
    assert push_span >= combined_span - 0.02

    # Subscriber pull plateaus below combined pull at every T.
    for sub, combined in zip(curves["subscriber-pull"], curves["combined-pull"]):
        assert sub <= combined + 0.01

    # Recovery beats the baseline at every interval.
    for name in ("push", "combined-pull", "publisher-pull", "random-pull"):
        for recovered, baseline in zip(curves[name], curves["none"]):
            assert recovered > baseline, name
