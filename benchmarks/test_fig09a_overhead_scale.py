"""Figure 9(a): gossip overhead vs. the system size N.

Paper: the number of gossip messages sent by each dispatcher grows with N
but "well below a linear trend" (gossip effort per node is local; only the
hop count grows, logarithmically).  The gossip/event ratio *decreases*
with N -- event forwarding is a multicast that must reach all recipients,
while gossip touches only a fraction -- falling from ≈ 28 % at 40 nodes to
≈ 20 % at 200 nodes.
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig9a_overhead_scale


def test_fig9a_overhead_vs_size(benchmark):
    result = run_once(benchmark, fig9a_overhead_scale)
    sizes = result.x_values
    for algorithm in ("push", "combined-pull"):
        absolute = result.curves[f"{algorithm}:msgs/disp"]
        ratio = result.curves[f"{algorithm}:ratio"]

        # Sublinear growth of per-dispatcher gossip: quadrupling N far
        # less than quadruples the per-dispatcher message count.
        growth = absolute[-1] / max(absolute[0], 1e-9)
        scale = sizes[-1] / sizes[0]
        assert growth < scale * 0.75, algorithm

        # The gossip/event ratio decreases with N.
        assert ratio[-1] < ratio[0], algorithm
        # And sits in the paper's ballpark band (tens of percent).
        assert 0.02 < ratio[-1] < 0.6, algorithm
