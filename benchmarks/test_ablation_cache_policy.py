"""Ablation: cache eviction policies (the paper's buffer-optimization
future work, after Ozkasap et al. [13]).

The paper uses plain FIFO.  We compare FIFO against LRU (recovery hits
keep hot events alive) and uniform-random eviction under a deliberately
tight buffer, where the policy actually matters.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.scenarios.experiments import base_config, equivalent_buffer
from repro.scenarios.runner import run_scenario


def test_cache_policy_comparison(benchmark):
    base = base_config().replace(algorithm="combined-pull")
    # A tight buffer (paper-equivalent beta=500): ~1.4 s of persistence.
    tight = base.replace(buffer_size=equivalent_buffer(base, 500))

    def experiment():
        return {
            policy: run_scenario(tight.replace(cache_policy=policy))
            for policy in ("fifo", "lru", "random")
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (
            policy,
            f"{run.delivery_rate:.4f}",
            f"{run.delivery.mean_recovery_latency*1000:.0f}ms",
            run.losses_recovered,
        )
        for policy, run in results.items()
    ]
    print()
    print(
        format_table(
            ["policy", "delivery", "recovery latency", "recovered"],
            rows,
            title="Ablation: cache eviction policy (tight buffer)",
        )
    )
    # All policies keep the system functional...
    for policy, run in results.items():
        assert run.delivery_rate > run.baseline_rate, policy
    # ...and no alternative policy collapses relative to the paper's FIFO
    # (the point of the ablation: the FIFO choice is not load-bearing).
    fifo = results["fifo"].delivery_rate
    for policy in ("lru", "random"):
        assert results[policy].delivery_rate > fifo - 0.08, policy
