"""Figure 7: dispatchers receiving an event as πmax grows.

Paper (N = 100, Π = 70, events matching at most 3 patterns): πmax = 5
already reaches about 25 % of dispatchers; πmax = 30 reaches about 80 %,
"essentially making communication more akin to a broadcast".
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig7_receivers_per_event


def test_fig7_receivers_per_event(benchmark):
    result = run_once(benchmark, fig7_receivers_per_event)
    receivers = dict(zip(result.x_values, result.curves["receivers"]))
    n = 100  # the experiment pins N = 100 like the paper

    # Monotone growth in pi_max.
    values = result.curves["receivers"]
    assert all(a < b for a, b in zip(values, values[1:]))

    # The paper's two calibration points (generous bands: our event sizes
    # are uniform in {1,2,3} where the paper's exact mix is unstated).
    assert 0.12 * n < receivers[5] < 0.40 * n
    assert 0.55 * n < receivers[30] < 0.95 * n

    # The default pi_max=2 yields the N_pi-consistent fanout: about
    # 2 patterns/event * 2.86 subscribers/pattern, minus overlap.
    assert 3.0 < receivers[2] < 9.0
