"""Figure 4 (top): effect of the buffer size β on delivery.

Paper: β swept from 500 to 4000 (1.3 s to 9.2 s of cache persistence).
Subscriber-based pull "cannot improve beyond a given limit" regardless of
β; push "relies more heavily on the persistence of events in the buffer"
and keeps improving as β grows, eventually overtaking combined pull, while
combined pull is the better of the two at small buffers.
"""

from __future__ import annotations

from benchmarks._helpers import curve_pairs, run_once
from repro.scenarios.experiments import fig4_buffer_sweep


def test_fig4_buffer_size(benchmark):
    result = run_once(benchmark, fig4_buffer_sweep)
    curves = result.curves

    def final(name):
        return curves[name][-1]

    def first(name):
        return curves[name][0]

    # The baseline is flat: β is irrelevant without recovery.
    none_curve = curves["none"]
    assert max(none_curve) - min(none_curve) < 0.05

    # Push gains substantially from a bigger buffer...
    assert final("push") > first("push") + 0.03
    # ...and ends at/near the top.
    assert final("push") >= final("subscriber-pull")

    # Subscriber pull plateaus well below the combined approach.
    assert final("subscriber-pull") < final("combined-pull") - 0.02
    # Its plateau: growing beta four-fold buys it little.
    assert final("subscriber-pull") - first("subscriber-pull") < 0.1

    # Combined pull is less buffer-hungry than push: at the smallest
    # buffer it does at least as well.
    assert first("combined-pull") >= first("push") - 0.02

    # Everything with recovery beats the baseline at every point.
    for name in ("push", "combined-pull", "subscriber-pull", "publisher-pull"):
        for (_, recovered), (_, baseline) in zip(
            curve_pairs(result, name), curve_pairs(result, "none")
        ):
            assert recovered > baseline
