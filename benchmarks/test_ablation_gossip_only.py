"""Ablation: gossip-only dissemination (the hpcast-style design of
Section V) vs. content-based routing plus epidemic recovery.

The paper's critique of using gossip as the *only* routing mechanism:
overhead even without faults (non-interested nodes relay and cache
everything, duplicates abound), probabilistic delivery even without
faults, and full events (not digests) in every gossip message.

We run both designs on a *reliable* network -- where the paper's approach
needs no recovery at all -- and on the lossy default, and compare
delivered fraction against bits moved.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.scenarios.experiments import base_config
from repro.scenarios.runner import run_scenario


def _traffic(run):
    """Total transmissions, with dissemination batches weighted by the
    events they carry (a batch of k events costs k event-sized messages)."""
    return (
        run.messages["sent_event"]
        + run.messages["sent_gossip"]
        + run.oob_messages
    )


def test_gossip_only_dissemination_tradeoff(benchmark):
    def experiment():
        results = {}
        for algorithm in ("combined-pull", "gossip-dissemination"):
            for eps in (0.0, 0.1):
                config = base_config().replace(
                    algorithm=algorithm,
                    error_rate=eps,
                    gossip_interval=0.02,
                )
                results[(algorithm, eps)] = run_scenario(config)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (
            algorithm,
            eps,
            f"{run.delivery_rate:.4f}",
            run.messages["sent_event"],
            run.messages["sent_gossip"],
        )
        for (algorithm, eps), run in results.items()
    ]
    print()
    print(
        format_table(
            ["design", "eps", "delivery", "event msgs", "gossip msgs"],
            rows,
            title="Ablation: gossip-only dissemination vs routed + recovery",
        )
    )
    # On a reliable network the routed design is perfect by construction;
    # gossip-only dissemination already loses events (drawback 2).
    assert results[("combined-pull", 0.0)].delivery_rate == 1.0
    assert results[("gossip-dissemination", 0.0)].delivery_rate < 0.999
    # And the routed design wins or ties on delivery under loss too.
    assert (
        results[("combined-pull", 0.1)].delivery_rate
        >= results[("gossip-dissemination", 0.1)].delivery_rate - 0.02
    )
    # Dissemination sends zero event messages -- gossip is its transport.
    assert results[("gossip-dissemination", 0.1)].messages["sent_event"] == 0
