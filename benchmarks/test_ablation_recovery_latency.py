"""Ablation: recovery latency of push vs. pull.

Section IV-C: "as known from the literature on epidemic algorithms [8],
the push approach has a bigger recovery latency than pull.  Moreover, in
our push approach each gossip round involves only one of the potentially
many patterns matching an event ... Instead, the pull approach gossips
more precise information about the lost event, and hence exhibits a
smaller latency."  This benchmark measures both latencies directly.
"""

from __future__ import annotations

from repro.scenarios.experiments import base_config
from repro.scenarios.runner import run_scenario


def test_pull_recovers_faster_than_push(benchmark):
    base = base_config()

    def experiment():
        return (
            run_scenario(base.replace(algorithm="push")),
            run_scenario(base.replace(algorithm="combined-pull")),
        )

    push, pull = benchmark.pedantic(experiment, rounds=1, iterations=1)
    push_latency = push.delivery.mean_recovery_latency
    pull_latency = pull.delivery.mean_recovery_latency
    print(
        f"\nmean recovery latency: push={push_latency*1000:.0f} ms, "
        f"combined pull={pull_latency*1000:.0f} ms"
    )
    assert push.delivery.recovered > 0
    assert pull.delivery.recovered > 0
    # The paper's claim: pull's targeted digests recover faster.
    assert pull_latency < push_latency
