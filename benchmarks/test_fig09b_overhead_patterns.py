"""Figure 9(b): gossip overhead vs. πmax.

Paper: the per-dispatcher gossip count is "only marginally affected" by
πmax (decreasing slightly: more caches nearby short-circuit recovery),
while the gossip/event ratio "decreases significantly" because the event
traffic explodes with the number of receivers (Figure 7) and gossip does
not keep pace.
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig9b_overhead_patterns

PI_VALUES = (1, 2, 5, 10, 16)


def test_fig9b_overhead_vs_patterns(benchmark):
    result = run_once(
        benchmark, fig9b_overhead_patterns, pi_values=PI_VALUES
    )
    for algorithm in ("push", "combined-pull"):
        absolute = result.curves[f"{algorithm}:msgs/disp"]
        ratio = result.curves[f"{algorithm}:ratio"]

        # The ratio falls as pi_max grows (the paper's drop is sharp; ours
        # is damped because our per-neighbor Bernoulli P_forward lets
        # gossip subtrees grow somewhat with fanout -- see EXPERIMENTS.md).
        assert ratio[-1] < ratio[0] * 0.9, algorithm

        # Per-dispatcher gossip varies far less than event traffic does:
        # compare relative spans.
        events_span = max(PI_VALUES) / min(PI_VALUES)  # proxy: fanout grows ~linearly
        gossip_span = max(absolute) / max(min(absolute), 1e-9)
        assert gossip_span < events_span, algorithm
