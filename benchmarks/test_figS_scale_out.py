"""Scalability extension: 10³..10⁵ dispatchers on the compact substrate.

Beyond the paper: Figure 6 stops at N = 200, where every algorithm's
scaling question is still about protocol dynamics, not substrate cost.
This experiment rides the compact-state substrate (scale-free overlay,
aggregate workload, columnar cache layout) far enough that memory and
wall time become the interesting curves.  The benchmark runs reduced
sizes to stay inside the suite's time budget; docs/EXPERIMENTS.md records
the full sweep to N = 10⁵.
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig_scalability

#: Small enough for the bench suite, large enough that the scale-free
#: overlay has real hubs and the auto cache layout flips to compact at the
#: top size.
BENCH_SIZES = (200, 500, 1_000)


def test_figS_scale_out(benchmark):
    result = run_once(benchmark, fig_scalability, sizes=BENCH_SIZES)
    curves = result.curves

    # Recovery keeps working at every size: combined pull on a lossy
    # scale-free overlay must deliver something at each point, and the
    # curves must be fully populated.
    for name in ("delivery_rate", "messages_per_event",
                 "wall_seconds", "peak_rss_mb"):
        assert len(curves[name]) == len(BENCH_SIZES), name
    assert all(rate > 0.0 for rate in curves["delivery_rate"])

    # The substrate scales sub-quadratically: a 5x size step may not cost
    # more than ~25x wall time (generous -- measured steps are near-linear
    # in N at fixed per-node rate, but CI hosts are noisy).
    wall = curves["wall_seconds"]
    assert wall[-1] <= max(wall[0], 0.05) * 25 * (
        BENCH_SIZES[-1] / BENCH_SIZES[0] / 5
    )

    # Peak RSS is a high-water mark sampled in ascending-N order, so the
    # series must be monotone non-decreasing by construction.
    peaks = curves["peak_rss_mb"]
    assert peaks == sorted(peaks)
