"""Shared plumbing for the figure-reproduction benchmarks.

Every benchmark runs its experiment exactly once (``rounds=1``): the
experiments are deterministic simulations, so repeated rounds would only
re-measure the same computation.  Each benchmark prints the paper-shaped
table (visible with ``pytest benchmarks/ --benchmark-only -s``) and asserts
the qualitative shape the paper reports; EXPERIMENTS.md records the
paper-vs-measured comparison.

Set ``REPRO_PAPER_SCALE=1`` to run at the paper's full scale (N = 100,
25 s simulations) -- slower, but the same harness.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, experiment_fn, *args, **kwargs):
    """Execute ``experiment_fn`` under pytest-benchmark, once."""
    result = benchmark.pedantic(
        experiment_fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    return result


def curve_pairs(result, name):
    """(x, y) pairs of one curve, Nones skipped."""
    return [
        (x, y)
        for x, y in zip(result.x_values, result.curves[name])
        if y is not None
    ]
