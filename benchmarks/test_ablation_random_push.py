"""Ablation: random push -- the control the paper drops.

Section IV: "Simulations of a similar random push approach are omitted
since their performance is extremely poor."  We implemented it anyway;
this benchmark substantiates the claim: random push barely improves on
the no-recovery baseline while tree-steered push closes most of the gap
to full delivery.
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig3a_lossy_delivery


def test_random_push_is_extremely_poor(benchmark):
    result = run_once(
        benchmark,
        fig3a_lossy_delivery,
        error_rate=0.1,
        algorithms=("none", "random-push", "push"),
    )
    rates = dict(zip(result.x_values, result.curves["delivery_rate"]))
    gap_random = rates["random-push"] - rates["none"]
    gap_push = rates["push"] - rates["none"]
    # Random push recovers something, but a small fraction of what the
    # tree-steered push recovers -- the paper's justification for omitting
    # its curves.
    assert gap_random < gap_push * 0.5
    assert rates["push"] > 0.85
