"""Figure 3(a): event delivery under lossy links.

Paper (Section IV-B): with ε = 0.05 the no-recovery baseline sits around
75 %; with ε = 0.1 around 55 %.  Neither pull variant alone reaches a
satisfactory rate; combined pull and push come close to full delivery
(≈ 98 % at ε = 0.05, ≈ 90 % at ε = 0.1).  Random pull sits in between;
(random push is so poor the paper omits it -- see the ablation benchmark).
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig3a_lossy_delivery


def _rates(result):
    return dict(zip(result.x_values, result.curves["delivery_rate"]))


def test_fig3a_low_error_rate(benchmark):
    result = run_once(benchmark, fig3a_lossy_delivery, error_rate=0.05)
    rates = _rates(result)
    # Baseline band (tree-shape dependent; paper: ~75 %).
    assert 0.60 < rates["none"] < 0.90
    # Every algorithm improves on the baseline.
    for name, rate in rates.items():
        if name != "none":
            assert rate > rates["none"], name
    # The paper's winners approach full delivery.
    assert rates["push"] > 0.9
    assert rates["combined-pull"] > 0.9


def test_fig3a_high_error_rate(benchmark):
    result = run_once(benchmark, fig3a_lossy_delivery, error_rate=0.1)
    rates = _rates(result)
    # Baseline band (paper: ~55 %; shallower bench tree sits a bit higher).
    assert 0.45 < rates["none"] < 0.75
    for name, rate in rates.items():
        if name != "none":
            assert rate > rates["none"] + 0.05, name
    # Combined pull dominates each pull variant alone.
    assert rates["combined-pull"] >= rates["subscriber-pull"]
    assert rates["combined-pull"] >= rates["publisher-pull"] - 0.01
    # Subscriber-based pull alone is the weakest recovery (its plateau).
    recovery = {k: v for k, v in rates.items() if k != "none"}
    assert min(recovery, key=recovery.get) == "subscriber-pull"
    # Push and combined pull deliver the large majority of events.
    assert rates["push"] > 0.85
    assert rates["combined-pull"] > 0.85
