"""Ablations over the parameters the paper leaves unspecified.

DESIGN.md Section 2 documents our defaults for P_forward (0.8), P_source
(0.5), and the out-of-band channel loss (0.0).  These benchmarks sweep
each and record how sensitive the headline result is to the choice --
the reproduction-honesty companion to the figure benchmarks.
"""

from __future__ import annotations

from repro.analysis.tables import format_series_table
from repro.scenarios.experiments import base_config
from repro.scenarios.runner import run_scenario


def _delivery(algorithm, **overrides):
    config = base_config().replace(algorithm=algorithm, **overrides)
    return run_scenario(config).delivery_rate


def test_p_forward_sweep(benchmark):
    values = (0.2, 0.5, 0.8, 1.0)

    def experiment():
        return {
            "push": [_delivery("push", p_forward=v) for v in values],
            "combined-pull": [
                _delivery("combined-pull", p_forward=v) for v in values
            ],
        }

    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(format_series_table("p_forward", list(values), curves, "Ablation: P_forward"))
    # Both algorithms degrade when gossip is pruned too aggressively.
    for name, curve in curves.items():
        assert curve[-1] > curve[0], name
    # Push suffers more from aggressive pruning: its gossip must travel
    # multiple pruned hops, while pull digests short-circuit early.
    push_span = curves["push"][-1] - curves["push"][0]
    pull_span = curves["combined-pull"][-1] - curves["combined-pull"][0]
    assert push_span > pull_span - 0.02


def test_p_source_sweep(benchmark):
    values = (0.0, 0.25, 0.5, 0.75, 1.0)

    def experiment():
        return {
            "combined-pull": [
                _delivery("combined-pull", p_source=v) for v in values
            ]
        }

    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(format_series_table("p_source", list(values), curves, "Ablation: P_source"))
    curve = curves["combined-pull"]
    # The mix dominates (or matches) both pure extremes -- the paper's
    # rationale for combining: the endpoints are each weak somewhere.
    best_mix = max(curve[1:-1])
    assert best_mix >= curve[0] - 0.02
    assert best_mix >= curve[-1] - 0.02


def test_oob_loss_sweep(benchmark):
    values = (0.0, 0.1, 0.3)

    def experiment():
        return {
            "combined-pull": [
                _delivery("combined-pull", oob_error_rate=v) for v in values
            ],
            "push": [_delivery("push", oob_error_rate=v) for v in values],
        }

    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(
        format_series_table(
            "oob_error_rate", list(values), curves, "Ablation: out-of-band loss"
        )
    )
    # Recovery tolerates an unreliable out-of-band channel gracefully:
    # repeated gossip rounds compensate, so moderate loss costs only a
    # few points of delivery.
    for name, curve in curves.items():
        assert curve[0] >= curve[-1], name
        assert curve[0] - curve[1] < 0.10, name


def test_tree_style_sensitivity(benchmark):
    styles = ("bushy", "uniform")

    def experiment():
        return {
            "none": [_delivery("none", tree_style=s) for s in styles],
            "combined-pull": [
                _delivery("combined-pull", tree_style=s) for s in styles
            ],
        }

    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(
        format_series_table(
            "tree_style", list(styles), curves, "Ablation: overlay shape"
        )
    )
    # Deeper (uniform) trees lose more on the way -- the baseline drops --
    # while recovery absorbs most of the difference.
    none_drop = curves["none"][0] - curves["none"][1]
    pull_drop = curves["combined-pull"][0] - curves["combined-pull"][1]
    assert none_drop > 0.0
    assert pull_drop < none_drop + 0.02
