"""Ablation: the idealized acknowledgment comparator (Section V).

The paper rejects Gryphon-style acknowledgment schemes [20] for dynamic
scenarios.  Our idealized ``ack`` algorithm (global recipient knowledge,
publisher-driven out-of-band retransmissions) quantifies the trade:

* it achieves essentially full delivery -- it is an upper bound; but
* its recovery traffic is paid on *every* delivery (ACKs), so on a mostly
  reliable network it costs far more than reactive pull, which only
  communicates when something was actually lost.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.scenarios.experiments import base_config
from repro.scenarios.runner import run_scenario


def _recovery_traffic(run):
    return run.oob_messages + run.messages["sent_gossip"]


def test_ack_upper_bound_and_its_cost(benchmark):
    def experiment():
        results = {}
        for algorithm in ("ack", "combined-pull"):
            for eps in (0.01, 0.1):
                config = base_config().replace(algorithm=algorithm, error_rate=eps)
                results[(algorithm, eps)] = run_scenario(config)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (
            algorithm,
            eps,
            f"{run.delivery_rate:.4f}",
            _recovery_traffic(run),
            f"{run.recovery_load_skew:.2f}",
        )
        for (algorithm, eps), run in results.items()
    ]
    print()
    print(
        format_table(
            ["algorithm", "eps", "delivery", "recovery msgs", "load skew"],
            rows,
            title="Ablation: idealized ACK scheme vs combined pull",
        )
    )
    # The ACK scheme is an upper bound on delivery...
    for eps in (0.01, 0.1):
        assert results[("ack", eps)].delivery_rate > 0.99
        assert (
            results[("ack", eps)].delivery_rate
            >= results[("combined-pull", eps)].delivery_rate - 0.005
        )
    # ...but on a near-reliable network it pays recovery traffic per
    # delivery while pull pays per loss.
    assert _recovery_traffic(results[("ack", 0.01)]) > 3 * _recovery_traffic(
        results[("combined-pull", 0.01)]
    )
