"""Ablation: the adaptive gossip interval (Section IV-E's suggested
extension, after PlanetP [14]).

Claim to check: on a mostly reliable network, adapting T removes push's
idle gossip (approaching pull's low overhead) while keeping delivery
essentially intact on lossy networks.
"""

from __future__ import annotations

from repro.scenarios.experiments import base_config
from repro.scenarios.runner import run_scenario


def _run(algorithm, error_rate, load="low"):
    config = base_config(load=load).replace(
        algorithm=algorithm, error_rate=error_rate
    )
    return run_scenario(config)


def test_adaptive_push_cuts_idle_overhead(benchmark):
    def experiment():
        return (
            _run("push", error_rate=0.01),
            _run("adaptive-push", error_rate=0.01),
        )

    fixed, adaptive = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(
        f"\nfixed-T push: {fixed.gossip_per_dispatcher:.0f} msgs/disp, "
        f"delivery {fixed.delivery_rate:.3f}"
    )
    print(
        f"adaptive push: {adaptive.gossip_per_dispatcher:.0f} msgs/disp, "
        f"delivery {adaptive.delivery_rate:.3f}"
    )
    # On a near-reliable network the adaptive variant gossips far less...
    assert adaptive.gossip_per_dispatcher < fixed.gossip_per_dispatcher * 0.6
    # ...without giving up meaningful delivery.
    assert adaptive.delivery_rate > fixed.delivery_rate - 0.05


def test_adaptive_push_still_recovers_under_loss(benchmark):
    def experiment():
        return (
            _run("none", error_rate=0.1, load="high"),
            _run("adaptive-push", error_rate=0.1, load="high"),
        )

    baseline, adaptive = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(
        f"\nbaseline {baseline.delivery_rate:.3f} -> "
        f"adaptive push {adaptive.delivery_rate:.3f}"
    )
    assert adaptive.delivery_rate > baseline.delivery_rate + 0.1
