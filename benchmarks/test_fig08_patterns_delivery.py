"""Figure 8: delivery as πmax (subscribers per pattern) increases, under
low (top chart) and high (bottom chart) publish load.  Both charts were
derived with β = 4000.

Paper: under low load push and combined pull are basically flat in πmax.
Under high load, growing πmax multiplies the events each dispatcher must
cache, so the fixed β becomes insufficient and "performance decreases
significantly for all solutions" beyond πmax ≈ 6.  (The buffer-overload
effect is relative to run length; the experiment scales β so its
persistence *fraction* matches the paper's -- see
``fig8_patterns_delivery`` and EXPERIMENTS.md.)
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig8_patterns_delivery

PI_VALUES = (1, 2, 4, 8, 12)


def test_fig8_low_load(benchmark):
    result = run_once(
        benchmark, fig8_patterns_delivery, load="low", pi_values=PI_VALUES
    )
    curves = result.curves
    for name in ("push", "combined-pull"):
        values = curves[name]
        # Flat: under low load the buffer never fills, pi_max is harmless.
        assert max(values) - min(values) < 0.08, name
        for recovered, baseline in zip(values, curves["none"]):
            assert recovered > baseline, name


def test_fig8_high_load(benchmark):
    result = run_once(
        benchmark, fig8_patterns_delivery, load="high", pi_values=PI_VALUES
    )
    curves = result.curves
    # Under high load, large pi_max overloads the fixed buffer: delivery
    # at the largest pi_max falls below the best point of the curve (the
    # paper's drop is steep at its scale; ours is damped, see
    # EXPERIMENTS.md).
    for name in ("push", "combined-pull"):
        values = curves[name]
        assert values[-1] < max(values) - 0.015, name
    # Still better than no recovery everywhere.
    for name in ("push", "combined-pull", "subscriber-pull"):
        for recovered, baseline in zip(curves[name], curves["none"]):
            assert recovered >= baseline - 0.01, name
    # Subscriber-based pull gains from more subscribers per pattern at
    # small pi_max (more caches to pull from).
    sub = curves["subscriber-pull"]
    assert sub[1] >= sub[0] - 0.02
