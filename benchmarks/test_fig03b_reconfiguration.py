"""Figure 3(b): event delivery under topological reconfigurations.

Paper: links are fully reliable; every ρ seconds a tree link breaks and is
replaced 0.1 s later.  With ρ = 0.2 s (non-overlapping) the delivery rate
without recovery dips as low as ~70 % around reconfigurations; with
ρ = 0.03 s (overlapping) it drops to ~60 %.  Push and combined pull "cut
all the negative spikes", keeping delivery near 100 % (never below ~95 %
even in the overlapping case).
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig3b_reconfiguration


def _by_algorithm(result, curve):
    return dict(zip(result.x_values, result.curves[curve]))


def test_fig3b_non_overlapping(benchmark):
    result = run_once(benchmark, fig3b_reconfiguration, interval=0.2)
    rates = _by_algorithm(result, "delivery_rate")
    worst = _by_algorithm(result, "worst_bin")
    # Reconfigurations cost the baseline real deliveries...
    assert rates["none"] < 0.995
    assert worst["none"] < 0.93
    # ...and the paper's best algorithms level the spikes out.
    for name in ("push", "combined-pull"):
        assert rates[name] > rates["none"]
        assert rates[name] > 0.98, name
        assert worst[name] > worst["none"], name


def test_fig3b_overlapping(benchmark):
    result = run_once(benchmark, fig3b_reconfiguration, interval=0.03)
    rates = _by_algorithm(result, "delivery_rate")
    worst = _by_algorithm(result, "worst_bin")
    # The extreme case: overlapping reconfigurations hurt the baseline more
    # than non-overlapping ones (cross-checked against the other test's
    # band) and recovery still masks most of the disruption.
    assert rates["none"] < 0.99
    assert worst["none"] < 0.9
    for name in ("push", "combined-pull"):
        assert rates[name] > rates["none"], name
        assert rates[name] > 0.95, name
        assert worst[name] > 0.85, name
