"""Ablation: seed-to-seed variance (Section IV-A's justification for
reporting single runs).

Paper: "The results of 10 simulations ran with different random seeds
showed that ... variations are limited, around 1%-2%.  Hence, we present
here the results of a single simulation."  We rerun the default scenario
(combined pull, ε = 0.1) under ten seeds and check the coefficient of
variation of the delivery rate lands in that band.
"""

from __future__ import annotations

from repro.scenarios.experiments import base_config
from repro.scenarios.replication import run_replications


def test_seed_variance_is_one_to_two_percent(benchmark):
    config = base_config().replace(algorithm="combined-pull")

    def experiment():
        return run_replications(config, seeds=list(range(1, 11)))

    summary = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(
        f"\ndelivery over 10 seeds: mean={summary.mean:.4f} "
        f"std={summary.std:.4f} cv={summary.coefficient_of_variation:.2%} "
        f"range=[{summary.minimum:.4f}, {summary.maximum:.4f}]"
    )
    # The paper's band, with headroom for our smaller bench scale (smaller
    # systems fluctuate a little more).
    assert summary.coefficient_of_variation < 0.05
    # And the spread is genuinely nonzero -- seeds do change the runs.
    assert summary.maximum > summary.minimum
