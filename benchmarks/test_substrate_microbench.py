"""Microbenchmarks of the substrate hot paths.

Unlike the figure benchmarks (single-shot simulations), these measure raw
throughput of the pieces the simulation spends its time in, with proper
repeated rounds -- useful when optimizing the simulator itself.
"""

from __future__ import annotations

from repro.pubsub.cache import EventCache
from repro.pubsub.pattern import PatternSpace
from repro.scenarios.builder import Simulation
from repro.scenarios.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.topology.generator import bushy_tree
from tests.conftest import make_event


def test_engine_event_throughput(benchmark):
    """Schedule+dispatch cost of the bare event loop."""

    def run_events():
        sim = Simulator()
        count = 20_000

        def noop():
            pass

        for i in range(count):
            sim.schedule(i * 1e-6, noop)
        sim.run()
        return sim.events_processed

    processed = benchmark(run_events)
    assert processed == 20_000


def test_cache_insert_lookup_throughput(benchmark):
    """FIFO cache at the default β with all three indexes live."""
    events = [
        make_event(source=i % 7, seq=i + 1, patterns=(i % 11, 11 + i % 13),
                   pattern_seqs={i % 11: i + 1, 11 + i % 13: i + 1})
        for i in range(5_000)
    ]

    def churn():
        cache = EventCache(1500)
        hits = 0
        for event in events:
            cache.insert(event)
        for event in events:
            if cache.get(event.event_id) is not None:
                hits += 1
        return hits

    hits = benchmark(churn)
    assert hits == 1500


def test_route_oracle_rebuild(benchmark):
    """Full subscription-table rebuild at paper scale (the reconfiguration
    hot path)."""
    config = SimulationConfig(sim_time=1.0, measure_start=0.1, measure_end=0.9)
    simulation = Simulation(config)

    rebuilds = benchmark(simulation.system.rebuild_routes)


def test_event_publish_routing(benchmark):
    """End-to-end cost of publishing events through a 100-node overlay
    with reliable links (routing + delivery, no recovery)."""
    config = SimulationConfig(
        algorithm="none",
        error_rate=0.0,
        publish_rate=50.0,
        sim_time=1.0,
        measure_start=0.1,
        measure_end=0.9,
    )

    def run_second():
        simulation = Simulation(config)
        result = simulation.run()
        return result.events_published

    published = benchmark.pedantic(run_second, rounds=3, iterations=1)
    assert published > 3_000


def test_tree_generation(benchmark):
    rng = RandomStreams(7).stream("bench-tree")

    def build():
        return bushy_tree(200, rng, max_degree=4)

    tree = benchmark(build)
    assert tree.node_count == 200


def test_matching_throughput(benchmark):
    """Subscription-table matching over a realistic table."""
    from repro.pubsub.subscription import SubscriptionTable

    rng = RandomStreams(3).stream("bench-match")
    space = PatternSpace(70)
    table = SubscriptionTable()
    for pattern in range(70):
        for direction in rng.sample(range(4), rng.randint(1, 3)):
            table.add(pattern, direction)
    contents = [space.sample_event_patterns(rng) for _ in range(2_000)]

    def match_all():
        total = 0
        for patterns in contents:
            total += len(table.matching_directions(patterns))
        return total

    total = benchmark(match_all)
    assert total > 0


def test_matching_memo_throughput(benchmark):
    """Hot-path matching with heavy content repetition.

    A run draws event contents from a small pool over and over, so
    :meth:`matching_directions_sorted` should be dominated by memo hits;
    this benchmark is the memo's best case and regresses loudly if the
    cache is lost or keyed badly.
    """
    from repro.pubsub.subscription import SubscriptionTable

    rng = RandomStreams(3).stream("bench-memo")
    space = PatternSpace(70)
    table = SubscriptionTable()
    for pattern in range(70):
        for direction in rng.sample(range(4), rng.randint(1, 3)):
            table.add(pattern, direction)
    distinct = [space.sample_event_patterns(rng) for _ in range(200)]

    def match_repeated():
        total = 0
        for _ in range(50):
            for patterns in distinct:
                directions = table.matching_directions_sorted(patterns)
                total += len(directions)
                if directions and directions[0] == -1:  # LOCAL
                    total += 1
        return total

    total = benchmark(match_repeated)
    assert total > 0


def test_forward_event_throughput(benchmark):
    """``Dispatcher._forward_event`` through a live overlay.

    The per-hop match + per-direction send that dominates event routing;
    exercised straight on a built simulation so link/observer inlining
    shows up here too.
    """
    config = SimulationConfig(
        n_dispatchers=20,
        n_patterns=35,
        algorithm="none",
        error_rate=0.0,
        sim_time=2.0,
        measure_start=0.1,
        measure_end=1.0,
        buffer_size=100,
        seed=9,
    )
    events = [
        make_event(source=0, seq=i + 1, patterns=(i % 35,),
                   pattern_seqs={i % 35: i + 1})
        for i in range(1_000)
    ]

    def forward():
        simulation = Simulation(config)
        dispatcher = simulation.system.dispatchers[0]
        for event in events:
            dispatcher._forward_event(event, None, exclude=None)
        return simulation.sim.pending

    pending = benchmark(forward)
    assert pending > 0
