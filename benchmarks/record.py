"""Record a performance trajectory: ``BENCH_<date>.json`` at the repo root.

Unlike the pytest-benchmark microbenches (which compare alternatives within
one working tree), this harness produces a small, committable JSON snapshot
of the numbers that matter across PRs:

* the substrate microbenches (engine loop, event cache, subscription-table
  matching, dispatcher forwarding);
* one representative figure scenario (the Figure 3(a) combined-pull cell),
  timed end to end;
* the parallel-executor scaling of a four-algorithm sweep (skipped
  gracefully when :mod:`repro.parallel` is not importable, so the script
  can also record trees that predate the executor);
* the full-tree whole-program lint pass (REP1xx+2xx+3xx plus the
  ownership report) — the analyzer runs on every push, so its wall time
  and peak RSS are gated like any other hot path.

Usage::

    PYTHONPATH=src python benchmarks/record.py                # full record
    PYTHONPATH=src python benchmarks/record.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/record.py --label before \
        --output /tmp/before.json
    PYTHONPATH=src python benchmarks/record.py --label after \
        --baseline /tmp/before.json   # embeds before/after + speedups

Every workload below is seeded and deterministic; only the wall-clock
measurements vary between hosts.  Committed records are therefore
comparable *within* one machine's trajectory, not across machines --
``docs/PERFORMANCE.md`` explains how to read them.
"""

from __future__ import annotations

import argparse
import datetime as _datetime
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.pubsub.cache import EventCache
from repro.pubsub.event import Event, EventId
from repro.pubsub.pattern import PatternSpace
from repro.pubsub.subscription import SubscriptionTable
from repro.scenarios.builder import Simulation
from repro.scenarios.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Algorithms used by the sweep-scaling section (the Figure 3(a) legend
#: minus the idealized comparators, keeping the record fast).
SWEEP_ALGORITHMS = ("none", "push", "subscriber-pull", "combined-pull")


def _make_events(count: int, n_patterns: int, seed: int) -> List[Event]:
    rng = RandomStreams(seed).stream("bench-events")
    space = PatternSpace(n_patterns)
    events = []
    for i in range(count):
        patterns = space.sample_event_patterns(rng)
        events.append(
            Event(
                EventId(i % 16, i + 1),
                patterns,
                {pattern: i + 1 for pattern in patterns},
                0.0,
            )
        )
    return events


def _max_rss_kb() -> Optional[int]:
    """Peak resident-set size of this process, in KB.

    ``ru_maxrss`` is a high-water mark: it only ever grows, so per-bench
    readings are monotone within one record and the *first* bench to touch
    a lot of memory dominates the rest.  Compare the same bench name
    across records (the bench order is fixed), not benches within one.
    Linux reports KB, macOS bytes; ``None`` on hosts without ``resource``.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes, not KB, there
        peak //= 1024
    return int(peak)


def _time(fn: Callable[[], object], repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` wall time of ``fn`` (plus the last return value
    when it is numeric, as a sanity check that work actually happened)."""
    best = None
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    record: Dict[str, float] = {"seconds": round(best, 6)}
    if isinstance(value, (int, float)):
        record["work"] = value
    return record


# ----------------------------------------------------------------------
# Substrate microbenches
# ----------------------------------------------------------------------
def bench_engine_loop(quick: bool) -> Dict[str, float]:
    count = 5_000 if quick else 50_000

    def run() -> int:
        sim = Simulator()

        def noop() -> None:
            pass

        for i in range(count):
            sim.schedule(i * 1e-6, noop)
        sim.run()
        return sim.events_processed

    return _time(run, repeats=3)


def bench_cache_churn(quick: bool) -> Dict[str, float]:
    events = _make_events(1_000 if quick else 10_000, n_patterns=24, seed=11)

    def churn() -> int:
        cache = EventCache(1500)
        for event in events:
            cache.insert(event)
        hits = 0
        for event in events:
            if cache.get(event.event_id) is not None:
                hits += 1
        return hits

    return _time(churn, repeats=3)


def _populated_table(seed: int = 3) -> SubscriptionTable:
    rng = RandomStreams(seed).stream("bench-table")
    table = SubscriptionTable()
    for pattern in range(70):
        for direction in rng.sample(range(4), rng.randint(1, 3)):
            table.add(pattern, direction)
    return table


def bench_table_matching(quick: bool) -> Dict[str, float]:
    """Matching over event contents that repeat heavily, as they do within
    a run -- the workload the memo cache (if present) is built for."""
    rng = RandomStreams(5).stream("bench-match")
    space = PatternSpace(70)
    distinct = [space.sample_event_patterns(rng) for _ in range(200)]
    rounds = 5 if quick else 50
    table = _populated_table()

    def match_all() -> int:
        total = 0
        for _ in range(rounds):
            for patterns in distinct:
                total += len(table.matching_directions(patterns))
                if table.matches_locally(patterns):
                    total += 1
        return total

    return _time(match_all, repeats=3)


def bench_forward_event(quick: bool) -> Dict[str, float]:
    """Dispatcher._forward_event through a live overlay: the per-hop match
    + sort + per-direction send that dominates event routing."""
    config = SimulationConfig(
        n_dispatchers=20,
        n_patterns=35,
        algorithm="none",
        error_rate=0.0,
        sim_time=2.0,
        measure_start=0.1,
        measure_end=1.0,
        buffer_size=100,
        seed=9,
    )
    events = _make_events(200 if quick else 2_000, n_patterns=35, seed=13)
    count = 5 if quick else 20

    def forward() -> int:
        simulation = Simulation(config)
        dispatcher = simulation.system.dispatchers[0]
        for _ in range(count):
            for event in events:
                dispatcher._forward_event(event, None, exclude=None)
        return simulation.sim.pending

    return _time(forward, repeats=3)


# ----------------------------------------------------------------------
# Representative figure scenario
# ----------------------------------------------------------------------
def _figure_config(quick: bool) -> SimulationConfig:
    from repro.scenarios.experiments import base_config

    config = base_config().replace(algorithm="combined-pull")
    if quick:
        config = config.replace(
            n_dispatchers=24,
            sim_time=2.5,
            measure_start=0.5,
            measure_end=2.0,
            buffer_size=400,
        )
    return config


def bench_figure_scenario(quick: bool) -> Dict[str, float]:
    config = _figure_config(quick)

    best = None
    result = None
    for _ in range(2 if quick else 3):  # best-of-N: host noise dominates
        start = time.perf_counter()
        result = Simulation(config).run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return {
        "seconds": round(best, 6),
        "sim_events_processed": result.sim_events_processed,
        "events_published": result.events_published,
        "delivery_rate": round(result.delivery_rate, 6),
    }


def bench_faults_scenario(quick: bool) -> Optional[Dict[str, object]]:
    """The figure scenario again, with the full fault stack switched on
    (Poisson churn + Gilbert--Elliott burst loss + graceful degradation)
    next to a faults-disabled control run.  ``enabled_over_disabled``
    tracks the cost of the fault machinery itself; the control's
    ``disabled_seconds`` compared across records tracks the passive
    injection-hook overhead a fault-free run pays (contract: < 3%)."""
    try:
        from repro.faults import ChurnProcess, FaultPlan, GilbertElliottConfig
        from repro.recovery.degrade import DegradationConfig
    except ImportError:  # pragma: no cover - pre-fault-layer trees
        return None

    base = _figure_config(quick)
    plan = FaultPlan(
        churn=ChurnProcess(rate=1.0, mean_downtime=0.4, start=base.measure_start),
        link_loss=GilbertElliottConfig.from_epsilon(
            base.error_rate, mean_burst_length=5.0
        ),
    )
    faulted = base.replace(faults=plan, degradation=DegradationConfig())

    record: Dict[str, object] = {}
    for key, config in (("disabled", base), ("enabled", faulted)):
        best = None
        result = None
        for _ in range(2 if quick else 3):
            start = time.perf_counter()
            result = Simulation(config).run()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        record[f"{key}_seconds"] = round(best, 6)
        record[f"{key}_delivery"] = round(result.delivery_rate, 6)
    # The loop leaves `result` holding the faulted run.
    record["seconds"] = record["enabled_seconds"]
    record["enabled_over_disabled"] = round(
        record["enabled_seconds"] / record["disabled_seconds"], 3
    )
    record["crashes"] = result.faults.crashes
    record["burst_drops"] = result.faults.burst_drops
    return record


# ----------------------------------------------------------------------
# Large-topology scenario (compact-state substrate)
# ----------------------------------------------------------------------
#: The scale probe: combined pull on a scale-free overlay with the
#: aggregate workload model and the compact cache layout (auto-selected
#: at this node count).  Parameters match docs/EXPERIMENTS.md's
#: fig_scalability sweep.  The *system-wide* publish load is held at 200
#: events/s regardless of N (the paper's scaling methodology): each event
#: costs O(N) delivery work and O(subscribers) tracking state, so a fixed
#: per-node rate would make the probe O(N^2) in both time and memory.
_LARGE_TOPOLOGY_CHILD = """\
import json, resource, sys, time
from repro.scenarios.config import SimulationConfig
from repro.scenarios.runner import run_scenario

n = int(sys.argv[1])
start = time.perf_counter()
config = SimulationConfig(
    n_dispatchers=n, n_patterns=70, pi_max=2, publish_rate=200.0 / n,
    sim_time=3.0, measure_start=0.5, measure_end=2.5, buffer_size=32,
    gossip_interval=0.1, error_rate=0.1, algorithm="combined-pull",
    tree_style="scale-free", workload_model="aggregate", seed=1,
)
result = run_scenario(config)
elapsed = time.perf_counter() - start
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak //= 1024
print(json.dumps({
    "seconds": round(elapsed, 3),
    "max_rss_kb": int(peak),
    "n_dispatchers": n,
    "delivery_rate": round(result.delivery_rate, 6),
    "events_published": result.events_published,
    "sim_events_processed": result.sim_events_processed,
}))
"""


def _run_large_topology(n_dispatchers: int) -> Optional[Dict[str, object]]:
    """Run the scale probe in a child process and return its self-report.

    A child process for two reasons: ``ru_maxrss`` is a per-process
    high-water mark, so measuring in-process would (a) read whatever
    earlier benches peaked at and (b) permanently raise the parent's mark,
    poisoning every later bench's reading.  ``None`` when the tree cannot
    run the scenario (old trees without the scale-free/aggregate knobs).
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    try:
        proc = subprocess.run(
            [sys.executable, "-c", _LARGE_TOPOLOGY_CHILD, str(n_dispatchers)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
    except (subprocess.CalledProcessError, OSError):
        return None
    return json.loads(proc.stdout.splitlines()[-1])


def bench_large_topology(quick: bool) -> Optional[Dict[str, object]]:
    """The 10⁵-node scenario (2·10³ in quick mode, to keep quick records
    and the gate's unit tests cheap; the CI scale job uses --scale-smoke's
    10⁴ instead).  Single run -- at this size host noise is small relative
    to the minutes of work, and best-of-N would triple a multi-minute
    record."""
    return _run_large_topology(2_000 if quick else 100_000)


# ----------------------------------------------------------------------
# Sharded single-run scaling (repro.shard)
# ----------------------------------------------------------------------
#: The scale probe again, but under the per-edge loss discipline the
#: sharded runtime requires, at a parameterized shard count.  Serial
#: (shards=1) and sharded legs run the *same* discipline so their wall
#: times are comparable and their signatures must match byte for byte.
_SHARD_SCALING_CHILD = """\
import hashlib, json, resource, sys, time
from repro.scenarios.config import SimulationConfig
from repro.scenarios.runner import run_scenario
from repro.scenarios.serialize import config_digest

n = int(sys.argv[1])
shards = int(sys.argv[2])
config = SimulationConfig(
    n_dispatchers=n, n_patterns=70, pi_max=2, publish_rate=200.0 / n,
    sim_time=3.0, measure_start=0.5, measure_end=2.5, buffer_size=32,
    gossip_interval=0.1, error_rate=0.1, loss_discipline="per-edge",
    algorithm="combined-pull", tree_style="scale-free",
    workload_model="aggregate", seed=1, shards=shards,
)
start = time.perf_counter()
result = run_scenario(config)
elapsed = time.perf_counter() - start
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak //= 1024
# signature()[0] is the config; swap in its shard-agnostic digest so the
# hash compares across shard counts the way config equality does (the
# `shards` field is compare-excluded but still shows up in repr()).
signature = (config_digest(config),) + result.signature()[1:]
print(json.dumps({
    "seconds": round(elapsed, 3),
    "max_rss_kb": int(peak),
    "signature_sha256": hashlib.sha256(
        repr(signature).encode()
    ).hexdigest(),
    "delivery_rate": round(result.delivery_rate, 6),
    "sim_events_processed": result.sim_events_processed,
}))
"""


def _run_shard_cell(
    n_dispatchers: int, shards: int
) -> Optional[Dict[str, object]]:
    """Run one per-edge scale cell in a child process (RSS isolation, as
    for :func:`_run_large_topology`); ``None`` on trees without the
    sharded runtime."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    try:
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _SHARD_SCALING_CHILD,
                str(n_dispatchers),
                str(shards),
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
    except (subprocess.CalledProcessError, OSError):
        return None
    return json.loads(proc.stdout.splitlines()[-1])


def bench_shard_scaling(quick: bool) -> Optional[Dict[str, object]]:
    """Sharded execution of a single large run vs. the same run serial.

    The acceptance criterion for the sharded runtime is **>= 2x at
    shards=4 on a host with >= 4 cores**, with byte-identical signatures.
    The signature assertion bites on every host; the speedup is only
    meaningful when each worker process actually gets a core, so the
    record carries ``cpu_count`` and readers must interpret
    ``speedup_vs_serial`` against it (on a single-core host the sharded
    leg measures seam/synchronization overhead, not speedup -- exactly as
    ``sweep_scaling`` documents for its jobs=4 leg).

    ``seconds``/``max_rss_kb`` carry the *sharded* leg so the --check
    gate bounds the sharded runtime's time and memory like any other core
    bench; the serial leg of the same cell is gated by large_topology.
    """
    n, shards = (2_000, 2) if quick else (100_000, 4)
    serial = _run_shard_cell(n, 1)
    sharded = _run_shard_cell(n, shards)
    if serial is None or sharded is None:
        return None
    if serial["signature_sha256"] != sharded["signature_sha256"]:
        raise RuntimeError(
            f"shard_scaling: shards={shards} signature diverged from serial "
            f"({sharded['signature_sha256'][:12]} != "
            f"{serial['signature_sha256'][:12]})"
        )
    return {
        "seconds": sharded["seconds"],
        "serial_seconds": serial["seconds"],
        "speedup_vs_serial": round(serial["seconds"] / sharded["seconds"], 3),
        "n_dispatchers": n,
        "shards": shards,
        "cpu_count": os.cpu_count(),
        "signatures_match": True,
        "delivery_rate": sharded["delivery_rate"],
        "max_rss_kb": sharded["max_rss_kb"],
        "criterion": (
            ">=2x at shards=4 with byte-identical signatures, on a host "
            "with >=4 cores; single-core hosts measure seam overhead only"
        ),
    }


def shard_smoke(report_path: Optional[Path]) -> int:
    """CI entry point: a 2-shard figure cell must match serial exactly.

    Runs the quick figure scenario (combined pull, lossy links) under the
    per-edge discipline twice -- serial and shards=2 -- and fails unless
    ``RunResult.signature()`` is byte-identical.  Writes the partition
    plan's cut report (plus round/seam-traffic counts) to ``report_path``
    for upload as a CI artifact, so seam-traffic regressions are visible
    in the job output history.
    """
    from repro.scenarios.experiments import shardify
    from repro.scenarios.runner import run_scenario
    from repro.shard.runner import ShardedRunner

    config = shardify(_figure_config(quick=True), 2)
    if config.shards != 2:
        print("shard-smoke: cell did not shardify", file=sys.stderr)
        return 1
    serial = run_scenario(config.replace(shards=1))
    runner = ShardedRunner(config)
    sharded = runner.run()
    match = sharded.signature() == serial.signature()
    report: Dict[str, object] = {
        "match": match,
        "rounds": runner.rounds,
        "seam_messages": runner.seam_messages,
        "serial_seconds": serial.wall_clock_seconds,
        "sharded_seconds": sharded.wall_clock_seconds,
        "delivery_rate": round(sharded.delivery_rate, 6),
        **runner.plan.report(),
    }
    if report_path is not None:
        report_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {report_path}", file=sys.stderr)
    print(
        f"shard-smoke: shards=2 cut={report['cut_edges']}/"
        f"{report['total_edges']} rounds={runner.rounds} "
        f"seam={runner.seam_messages} match={match}",
        file=sys.stderr,
    )
    if not match:
        print(
            "shard-smoke FAIL: sharded signature diverged from serial",
            file=sys.stderr,
        )
        return 1
    print("shard-smoke passed", file=sys.stderr)
    return 0


def scale_smoke(time_budget_s: float, rss_budget_kb: int) -> int:
    """CI entry point: a 10⁴-node probe with hard time and memory bounds.

    Exits non-zero when the probe exceeds either budget or fails to run,
    so a regression in the compact-state substrate turns the scale-smoke
    job red rather than silently inflating.
    """
    entry = _run_large_topology(10_000)
    if entry is None:
        print("scale-smoke: probe failed to run", file=sys.stderr)
        return 1
    print(
        f"scale-smoke: n={entry['n_dispatchers']} "
        f"wall={entry['seconds']:.1f}s (budget {time_budget_s:.0f}s) "
        f"rss={entry['max_rss_kb'] / 1024:.0f}MB "
        f"(budget {rss_budget_kb / 1024:.0f}MB) "
        f"delivery={entry['delivery_rate']:.3f}",
        file=sys.stderr,
    )
    failures = []
    if entry["seconds"] > time_budget_s:
        failures.append(
            f"wall time {entry['seconds']:.1f}s > {time_budget_s:.0f}s"
        )
    if entry["max_rss_kb"] > rss_budget_kb:
        failures.append(
            f"peak RSS {entry['max_rss_kb']}KB > {rss_budget_kb}KB"
        )
    if entry["delivery_rate"] <= 0.0:
        failures.append("zero delivery -- scenario is not exercising recovery")
    if failures:
        print("scale-smoke FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("scale-smoke passed", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Parallel sweep scaling
# ----------------------------------------------------------------------
def _sweep_config(quick: bool) -> SimulationConfig:
    return SimulationConfig(
        n_dispatchers=16 if quick else 30,
        n_patterns=24,
        sim_time=1.5 if quick else 4.0,
        measure_start=0.25,
        measure_end=1.25 if quick else 3.0,
        buffer_size=300,
        seed=21,
    )


def bench_lint_analysis(quick: bool) -> Optional[Dict[str, object]]:
    """Full-tree whole-program analysis: REP1xx + REP2xx + REP3xx.

    The analyzer is part of every push (CI's ``static`` job and the
    tree-clean test gates), so its wall time is a developer-facing hot
    path in its own right — gating it here keeps the ownership/effect
    fixpoints from quietly going quadratic as the tree grows.
    """
    try:
        from repro.lint import lint_paths
        from repro.lint.cli import ownership_report_paths
        from repro.lint.config import load_config
    except ImportError:  # pragma: no cover - pre-analyzer trees
        return None

    config = load_config(REPO_ROOT / "pyproject.toml")
    paths = [REPO_ROOT / "src", REPO_ROOT / "benchmarks",
             REPO_ROOT / "examples"]

    def run() -> int:
        result = lint_paths(paths, config, analysis=True)
        report = ownership_report_paths(paths, config)
        if result.errors:
            raise RuntimeError(
                "lint errors during bench: "
                + "; ".join(e.render() for e in result.errors)
            )
        return report["files_analyzed"]

    return _time(run, repeats=1 if quick else 3)


def bench_sweep_scaling(quick: bool) -> Optional[Dict[str, object]]:
    try:
        from repro.scenarios.sweep import sweep_algorithms
    except ImportError:  # pragma: no cover - pre-executor trees
        return None
    import inspect

    if "jobs" not in inspect.signature(sweep_algorithms).parameters:
        return None  # tree predates the parallel executor

    base = _sweep_config(quick)
    # Scaling numbers are meaningless without the core count: jobs=4 on a
    # single-core host measures pool overhead, not speedup -- record the
    # count alongside the entry so readers (and the gate) can tell, and
    # skip the jobs=4 leg entirely when it could only measure overhead.
    cores = os.cpu_count() or 1
    record: Dict[str, object] = {
        "algorithms": list(SWEEP_ALGORITHMS),
        "cpu_count": cores,
    }
    try:
        from repro.parallel import get_executor

        # On hosts with fewer cores than jobs, get_executor falls back to
        # the serial executor; note which backend jobs=4 actually measured.
        record["jobs4_executor"] = type(get_executor(4)).__name__
    except ImportError:  # pragma: no cover - pre-fallback trees
        pass
    job_counts = (1,) if cores < 2 else (1, 4)
    for jobs in job_counts:
        start = time.perf_counter()
        results = sweep_algorithms(base, SWEEP_ALGORITHMS, jobs=jobs)
        elapsed = time.perf_counter() - start
        record[f"jobs{jobs}_seconds"] = round(elapsed, 6)
        record[f"jobs{jobs}_delivery"] = {
            algorithm: round(points[0].result.delivery_rate, 6)
            for algorithm, points in results.items()
        }
    if cores < 2:
        record["jobs4_skipped"] = (
            "single-core host: jobs=4 would measure pool overhead, "
            "not parallel speedup"
        )
        print(
            " (single-core host: skipping jobs=4 leg)",
            end="",
            flush=True,
            file=sys.stderr,
        )
    else:
        record["scaling"] = round(
            record["jobs1_seconds"] / record["jobs4_seconds"], 3
        )
    return record


def bench_campaign_journal(quick: bool) -> Optional[Dict[str, object]]:
    """Journaling overhead of the crash-tolerant campaign runtime.

    The same serial cell grid twice: straight ``run_scenario`` calls,
    then ``run_campaign`` journaling every cell into a fresh directory.
    Both legs execute identical simulation work, so the delta is purely
    the digest + JSON-serialize + atomic-rename cost per cell.  Contract
    (docs/CAMPAIGNS.md): ``journal_over_plain`` stays below 1.03.
    ``seconds`` carries the journaled leg so the regression gate bounds
    the sum of simulation time and journaling cost; the plain leg of the
    same grid is what ``figure_scenario`` and ``sweep_scaling`` already
    gate.
    """
    try:
        from repro.campaign import run_campaign
        from repro.scenarios.runner import run_scenario
    except ImportError:  # pragma: no cover - pre-campaign trees
        return None
    import shutil
    import tempfile

    base = _sweep_config(quick)
    configs = [base.replace(seed=seed) for seed in range(1, 3 if quick else 6)]

    def plain() -> float:
        return sum(run_scenario(config).delivery_rate for config in configs)

    def journaled() -> float:
        directory = tempfile.mkdtemp(prefix="bench-campaign-")
        try:
            outcome = run_campaign(configs, directory, jobs=1)
            return sum(
                result.delivery_rate for result in outcome.results if result
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    repeats = 1 if quick else 3
    plain_entry = _time(plain, repeats)
    journal_entry = _time(journaled, repeats)
    return {
        "seconds": journal_entry["seconds"],
        "plain_seconds": plain_entry["seconds"],
        "journal_over_plain": round(
            journal_entry["seconds"] / plain_entry["seconds"], 4
        ),
        "cells": len(configs),
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
BENCHES = {
    "engine_loop": bench_engine_loop,
    "cache_churn": bench_cache_churn,
    "table_matching": bench_table_matching,
    "forward_event": bench_forward_event,
    "figure_scenario": bench_figure_scenario,
    "faults_scenario": bench_faults_scenario,
    "large_topology": bench_large_topology,
    "shard_scaling": bench_shard_scaling,
    "lint_analysis": bench_lint_analysis,
    "campaign_journal": bench_campaign_journal,
}


def record(quick: bool, label: str) -> Dict[str, object]:
    benches: Dict[str, object] = {}
    for name, bench in BENCHES.items():
        print(f"  {name} ...", end="", flush=True, file=sys.stderr)
        entry = bench(quick)
        if entry is None:
            print(" skipped (layer not present)", file=sys.stderr)
            continue
        peak = _max_rss_kb()
        if peak is not None:
            # Subprocess-isolated benches (large_topology) report their own
            # child-process peak; don't overwrite it with the parent's mark.
            entry.setdefault("max_rss_kb", peak)
        benches[name] = entry
        print(f" {entry['seconds']:.3f}s", file=sys.stderr)
    print("  sweep_scaling ...", end="", flush=True, file=sys.stderr)
    scaling = bench_sweep_scaling(quick)
    if scaling is None:
        print(" skipped (no repro.parallel)", file=sys.stderr)
    else:
        peak = _max_rss_kb()
        if peak is not None:
            scaling["max_rss_kb"] = peak
        benches["sweep_scaling"] = scaling
        line = f" jobs1={scaling['jobs1_seconds']:.3f}s"
        if "jobs4_seconds" in scaling:
            line += (
                f" jobs4={scaling['jobs4_seconds']:.3f}s "
                f"({scaling['scaling']:.2f}x)"
            )
        print(line, file=sys.stderr)
    return {
        "schema": 1,
        "label": label,
        "date": _datetime.date.today().isoformat(),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Scaling numbers are meaningless without the core count: jobs=4
        # on a single-core host measures pool overhead, not speedup.
        "cpu_count": os.cpu_count(),
        "benches": benches,
    }


#: Benches gated by ``--check``: the kernel hot paths every PR must keep.
#: ``sweep_scaling`` and the faults-overhead scenario are reported but not
#: gating (they measure pool overhead and fault-path cost, both of which
#: legitimately move when those subsystems change).
CORE_BENCHES = (
    "engine_loop",
    "forward_event",
    "figure_scenario",
    "cache_churn",
    "table_matching",
    "large_topology",
    "shard_scaling",
    "lint_analysis",
    "campaign_journal",
)

#: Fractional peak-RSS growth tolerated on gating benches before the gate
#: fails.  Wider than the time threshold: allocator high-water marks are
#: coarser than wall clocks (arena growth is steppy), so 5% RSS wobble is
#: common noise where 5% time wobble is not.
MEM_THRESHOLD = 0.10


def compare_records(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float,
    mem_threshold: float = MEM_THRESHOLD,
) -> Dict[str, object]:
    """Compare two ``benches`` dicts; pure so the gate is unit-testable.

    Returns ``{"rows": [...], "regressions": [...]}`` where each row is
    ``(name, baseline_s, current_s, delta, gating)`` with ``delta`` the
    fractional slowdown (+0.08 = 8% slower than baseline) and
    ``regressions`` the core benches whose delta exceeds ``threshold``.
    When both sides carry ``max_rss_kb`` the row also gets a ``mem_delta``,
    and a gating bench whose peak RSS grew beyond ``mem_threshold`` joins
    ``regressions`` as ``"<name> (rss)"`` -- a memory regression fails the
    gate exactly like a time regression.  Benches present on only one side
    are skipped (records from different tree generations may not carry the
    same set).
    """
    rows: List[Dict[str, object]] = []
    regressions: List[str] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if not (
            isinstance(base, dict)
            and isinstance(cur, dict)
            and isinstance(base.get("seconds"), (int, float))
            and isinstance(cur.get("seconds"), (int, float))
            and base["seconds"] > 0
        ):
            continue
        delta = cur["seconds"] / base["seconds"] - 1.0
        gating = name in CORE_BENCHES
        regressed = gating and delta > threshold
        if regressed:
            regressions.append(name)
        row = {
            "name": name,
            "baseline_seconds": round(float(base["seconds"]), 6),
            "current_seconds": round(float(cur["seconds"]), 6),
            "delta": round(delta, 4),
            "gating": gating,
            "regressed": regressed,
        }
        base_rss = base.get("max_rss_kb")
        cur_rss = cur.get("max_rss_kb")
        if (
            isinstance(base_rss, (int, float))
            and isinstance(cur_rss, (int, float))
            and base_rss > 0
        ):
            mem_delta = cur_rss / base_rss - 1.0
            mem_regressed = gating and mem_delta > mem_threshold
            if mem_regressed:
                regressions.append(f"{name} (rss)")
            row["baseline_rss_kb"] = int(base_rss)
            row["current_rss_kb"] = int(cur_rss)
            row["mem_delta"] = round(mem_delta, 4)
            row["mem_regressed"] = mem_regressed
        rows.append(row)
    return {"rows": rows, "regressions": regressions}


def format_delta_table(comparison: Dict[str, object], threshold: float) -> str:
    """Render the per-bench delta table the gate prints (and uploads)."""
    lines = [
        f"{'bench':<18} {'baseline':>10} {'current':>10} {'delta':>8}  status",
        "-" * 58,
    ]
    for row in comparison["rows"]:
        if row["regressed"]:
            status = f"REGRESSION (> {threshold:.0%})"
        elif row.get("mem_regressed"):
            status = "RSS REGRESSION"
        elif not row["gating"]:
            status = "not gating"
        else:
            status = "ok"
        if "mem_delta" in row:
            status += f"  [rss {row['mem_delta']:+.1%}]"
        lines.append(
            f"{row['name']:<18} {row['baseline_seconds']:>9.4f}s "
            f"{row['current_seconds']:>9.4f}s {row['delta']:>+7.1%}  {status}"
        )
    return "\n".join(lines)


def _gate_self_test() -> int:
    """Prove the gate logic works: a synthetic 10% slowdown must fail, a
    within-threshold wobble must pass, and the memory gate must flag a 15%
    peak-RSS growth while letting an 8% one through.  Exit 0 when all
    hold."""
    base = {name: {"seconds": 1.0} for name in CORE_BENCHES}
    slow = {name: {"seconds": 1.0} for name in CORE_BENCHES}
    slow["engine_loop"] = {"seconds": 1.10}
    flagged = compare_records(base, slow, 0.05)["regressions"]
    wobble = dict(base)
    wobble["engine_loop"] = {"seconds": 1.04}
    passed = compare_records(base, wobble, 0.05)["regressions"]
    non_gating = compare_records(
        {"sweep_scaling_proxy": {"seconds": 1.0}},
        {"sweep_scaling_proxy": {"seconds": 2.0}},
        0.05,
    )["regressions"]
    mem_base = {
        name: {"seconds": 1.0, "max_rss_kb": 100_000} for name in CORE_BENCHES
    }
    mem_grown = {
        name: {"seconds": 1.0, "max_rss_kb": 100_000} for name in CORE_BENCHES
    }
    mem_grown["large_topology"] = {"seconds": 1.0, "max_rss_kb": 115_000}
    mem_flagged = compare_records(mem_base, mem_grown, 0.05)["regressions"]
    mem_wobble = dict(mem_base)
    mem_wobble["large_topology"] = {"seconds": 1.0, "max_rss_kb": 108_000}
    mem_passed = compare_records(mem_base, mem_wobble, 0.05)["regressions"]
    ok = (
        flagged == ["engine_loop"]
        and passed == []
        and non_gating == []
        and mem_flagged == ["large_topology (rss)"]
        and mem_passed == []
    )
    print(
        "gate self-test: "
        + (
            "ok (10% slowdown flagged, 4% wobble passed, "
            "15% RSS growth flagged, 8% passed)"
            if ok
            else "FAILED"
        ),
        file=sys.stderr,
    )
    return 0 if ok else 1


def _speedups(before: Dict[str, object], after: Dict[str, object]) -> Dict[str, float]:
    speedups = {}
    for name, entry in after.items():
        base = before.get(name)
        if (
            isinstance(entry, dict)
            and isinstance(base, dict)
            and "seconds" in entry
            and "seconds" in base
            and entry["seconds"] > 0
        ):
            speedups[name] = round(base["seconds"] / entry["seconds"], 3)
    return speedups


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke)"
    )
    parser.add_argument("--label", default="current", help="tag for this record")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="output path (default: BENCH_<date>.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="a previous record to embed as 'before' (adds per-bench speedups)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression gate: record fresh numbers, compare against "
        "--baseline, print the delta table, exit 1 on any core-bench "
        "regression beyond --threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="fractional slowdown tolerated by --check (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--mem-threshold",
        type=float,
        default=MEM_THRESHOLD,
        help="fractional peak-RSS growth tolerated by --check on gating "
        "benches (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate logic on synthetic data (no benches run)",
    )
    parser.add_argument(
        "--scale-smoke",
        action="store_true",
        help="run only the 10k-node scale probe with hard time/RSS budgets "
        "(CI scale-smoke job); exits 1 when a budget is exceeded",
    )
    parser.add_argument(
        "--scale-time-budget",
        type=float,
        default=120.0,
        help="--scale-smoke wall-time budget in seconds (default 120)",
    )
    parser.add_argument(
        "--scale-rss-budget-mb",
        type=float,
        default=800.0,
        help="--scale-smoke peak-RSS budget in MB (default 800)",
    )
    parser.add_argument(
        "--shard-smoke",
        action="store_true",
        help="run only the 2-shard vs serial signature check on the quick "
        "figure cell (CI shard-smoke job); exits 1 on any divergence",
    )
    parser.add_argument(
        "--shard-report",
        type=Path,
        default=None,
        help="--shard-smoke: also write the partition cut report (JSON) "
        "here for artifact upload",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return _gate_self_test()

    if args.scale_smoke:
        return scale_smoke(
            args.scale_time_budget, int(args.scale_rss_budget_mb * 1024)
        )

    if args.shard_smoke:
        return shard_smoke(args.shard_report)

    if args.check and args.baseline is None:
        parser.error("--check requires --baseline")

    print(f"recording ({'quick' if args.quick else 'full'}) ...", file=sys.stderr)
    current = record(args.quick, args.label)

    baseline_benches: Optional[Dict[str, object]] = None
    before_label = "before"
    before_date: Optional[str] = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        # A baseline may itself be a before/after document; compare against
        # its "after" side then.  Nested blocks carry their own label and
        # date (and older records without a nested date fall back to the
        # document date) so both round-trip through repeated merges.
        before = baseline.get("after", baseline)
        baseline_benches = before["benches"]
        before_label = before.get("label", "before")
        before_date = before.get("date") or baseline.get("date")

    if args.check:
        assert baseline_benches is not None
        comparison = compare_records(
            baseline_benches,
            current["benches"],
            args.threshold,
            mem_threshold=args.mem_threshold,
        )
        table = format_delta_table(comparison, args.threshold)
        print(table)
        if args.output is not None:
            args.output.write_text(
                json.dumps(
                    {
                        "schema": 1,
                        "threshold": args.threshold,
                        "mem_threshold": args.mem_threshold,
                        "baseline": str(args.baseline),
                        **comparison,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
            print(f"wrote {args.output}", file=sys.stderr)
        if comparison["regressions"]:
            print(
                f"FAIL: {', '.join(comparison['regressions'])} regressed "
                f"beyond {args.threshold:.0%}",
                file=sys.stderr,
            )
            return 1
        print("gate passed", file=sys.stderr)
        return 0

    document: Dict[str, object] = current
    if baseline_benches is not None:
        document = {
            "schema": 1,
            "date": current["date"],
            "quick": current["quick"],
            "python": current["python"],
            "platform": current["platform"],
            "cpu_count": current["cpu_count"],
            "before": {
                "label": before_label,
                "date": before_date,
                "benches": baseline_benches,
            },
            "after": {
                "label": current["label"],
                "date": current["date"],
                "benches": current["benches"],
            },
            "speedup": _speedups(baseline_benches, current["benches"]),
        }

    output = args.output
    if output is None:
        output = REPO_ROOT / f"BENCH_{current['date']}.json"
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
