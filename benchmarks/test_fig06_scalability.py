"""Figure 6: delivery as the system size N increases.

Paper: N swept 20..200 with Π fixed at 70 and β scaled linearly with N so
events persist ~4 s regardless of scale.  Push and combined pull stay at
the top across sizes (good scalability); the pull variants alone are more
scale-sensitive, with publisher-based pull the best at small N; push
"becomes more convenient as the system size increases" (more dispatchers
per pattern to gossip with).
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig6_scalability


def test_fig6_scalability(benchmark):
    result = run_once(benchmark, fig6_scalability)
    curves = result.curves

    # Push and combined pull beat the baseline at every size.
    for name in ("push", "combined-pull"):
        for recovered, baseline in zip(curves[name], curves["none"]):
            assert recovered > baseline, name

    # Push improves (or holds) as N grows: compare the smallest and the
    # largest sizes, relative to the no-recovery baseline at that size
    # (the baseline itself drifts as trees deepen).
    push_gain_small = curves["push"][0] - curves["none"][0]
    push_gain_large = curves["push"][-1] - curves["none"][-1]
    assert push_gain_large > push_gain_small - 0.03

    # At the smallest size the publisher-based variant is the stronger
    # lone-pull (the paper: "the publisher-based one being the best when
    # the number of nodes is limited" -- few subscribers per pattern).
    assert curves["publisher-pull"][0] >= curves["subscriber-pull"][0]

    # Scalability: combined pull's delivery does not collapse with N.
    combined = curves["combined-pull"]
    assert min(combined) > max(combined) - 0.12
