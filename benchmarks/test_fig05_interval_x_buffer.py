"""Figure 5: interplay of gossip interval T and buffer size β
(combined pull).

Paper: "increments in the buffer size do not bear any significant impact
after a given threshold", and "the sensitivity ... to changes in T is
greater when the buffer size is smaller" (a big buffer compensates for
less frequent gossip).
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig5_interval_buffer_grid


def _span(curve):
    values = [v for v in curve if v is not None]
    return max(values) - min(values)


def test_fig5_interval_buffer_interplay(benchmark):
    result = run_once(benchmark, fig5_interval_buffer_grid)
    curves = result.curves
    smallest = curves["beta=500"]
    mid = curves["beta=1500"]
    largest = curves["beta=3500"]

    # Bigger buffers help at every interval (weakly).
    for small_v, large_v in zip(smallest, largest):
        assert large_v >= small_v - 0.02

    # Diminishing returns: the step 500 -> 1500 buys more than the step
    # 1500 -> 3500.
    gain_low = sum(m - s for s, m in zip(smallest, mid))
    gain_high = sum(l - m for m, l in zip(mid, largest))
    assert gain_low >= gain_high - 0.02

    # Sensitivity to T is greater when the buffer is smaller.
    assert _span(smallest) >= _span(largest) - 0.02
