"""Figure 10: gossip overhead vs. the link error rate, under high (top)
and low (bottom) publish load.

Paper: the reactive pull "triggers communication only when a recovery is
needed while the proactive push gossips continuously".  At low load and
ε = 0.01 (baseline delivery ≈ 95 %), pull's overhead is about one third of
push's; as ε grows the gap narrows.  Push's overhead is essentially flat
in ε.
"""

from __future__ import annotations

from benchmarks._helpers import run_once
from repro.scenarios.experiments import fig10_overhead_error_rate


def test_fig10_high_load(benchmark):
    result = run_once(benchmark, fig10_overhead_error_rate, load="high")
    push = result.curves["push"]
    pull = result.curves["combined-pull"]
    # Push gossips unconditionally: its overhead is ~flat in eps.
    assert max(push) < min(push) * 1.5 + 1.0
    # Pull overhead grows with eps (more losses, fewer skipped rounds).
    assert pull[-1] > pull[0]


def test_fig10_low_load(benchmark):
    result = run_once(benchmark, fig10_overhead_error_rate, load="low")
    push = result.curves["push"]
    pull = result.curves["combined-pull"]
    # The paper's headline: at the smallest error rate under low load,
    # pull wastes far less bandwidth than push (paper: about 3x less).
    assert pull[0] < push[0] / 2.0
    # Push is still ~flat.
    assert max(push) < min(push) * 1.5 + 1.0
    # Pull's overhead rises toward push's as the network degrades.
    assert pull[-1] > pull[0] * 1.5
