#!/usr/bin/env python
"""Quickstart: lose events on a lossy overlay, recover them with gossip.

Runs the paper's default scenario at a laptop-friendly scale, once without
recovery and once with the combined pull algorithm, and prints the
before/after delivery rates -- the headline result of the paper in ~20
seconds of wall-clock.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_scenario


def main() -> None:
    base = SimulationConfig(
        n_dispatchers=50,  # N (paper: 100)
        n_patterns=35,  # Pi, keeping N*pi_max/Pi = 2.86 like the paper
        pi_max=2,  # patterns per subscriber
        publish_rate=50.0,  # high publishing load
        error_rate=0.1,  # eps: every link transmission lost w.p. 10%
        buffer_size=1000,  # beta: events cached per dispatcher
        gossip_interval=0.03,  # T: seconds between gossip rounds
        sim_time=8.0,
        measure_start=1.0,
        measure_end=4.0,
        seed=7,
    )

    print("Scenario: 50 dispatchers on a degree-<=4 tree, 10 Mbit/s links,")
    print(f"link error rate {base.error_rate}, {base.publish_rate:.0f} publish/s each.\n")

    for algorithm in ("none", "combined-pull", "push"):
        result = run_scenario(base.replace(algorithm=algorithm))
        recovered = result.delivery.recovered
        print(
            f"{algorithm:>14s}: delivery rate {result.delivery_rate:6.1%}"
            f"   (recovered {recovered} deliveries,"
            f" gossip overhead {result.gossip_event_ratio:5.1%} of event traffic)"
        )

    print(
        "\nThe epidemic algorithms turn a best-effort dispatcher into a"
        " reliable one\nat a bandwidth overhead of a few tens of percent --"
        " Figure 3(a) of the paper."
    )


if __name__ == "__main__":
    main()
