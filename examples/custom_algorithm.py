#!/usr/bin/env python
"""Extending the library: plug in your own recovery algorithm.

The recovery interface is small: subclass
:class:`~repro.recovery.base.RecoveryAlgorithm` (or
:class:`~repro.recovery.pull_base.PullRecoveryBase` for loss-detecting
variants), implement ``gossip_round`` and ``handle_gossip``, register the
class, and every scenario/benchmark in the repository can run it by name.

The example implements **eager pull**: a pull variant that does not wait
for the next gossip round -- it gossips immediately upon detecting a loss
(and then keeps the periodic rounds as a safety net).  It trades extra
messages for lower recovery latency; the script compares it against the
paper's subscriber-based pull.

Usage::

    python examples/custom_algorithm.py
"""

from __future__ import annotations

from repro import ALGORITHMS, SimulationConfig, run_scenario
from repro.recovery.digest import SubscriberPullGossip
from repro.recovery.pull_base import PullRecoveryBase


class EagerPullRecovery(PullRecoveryBase):
    """Subscriber-based pull that also fires immediately on detection."""

    name = "eager-pull"

    def on_event_received(self, event, route):
        before = self.detector.pending()
        super().on_event_received(event, route)
        if self.detector.pending() > before:
            # New losses detected: pull right now instead of waiting for
            # the timer (the periodic round still runs as a retry path).
            self._eager_pull()

    def _eager_pull(self) -> None:
        now = self.dispatcher.sim.now
        for pattern in self.detector.patterns_with_losses(now):
            entries = tuple(
                self.detector.entries_for_pattern(pattern, self.config.digest_limit)
            )
            payload = SubscriberPullGossip(self.node_id, pattern, entries)
            self.forward_along_pattern(pattern, payload, exclude=None)

    def gossip_round(self) -> None:
        if not self.subscriber_round():
            self.stats.rounds_skipped += 1


def main() -> None:
    # Registration makes the new algorithm a first-class citizen: the
    # scenario builder, CLI, and sweeps all accept it by name.
    ALGORITHMS[EagerPullRecovery.name] = EagerPullRecovery

    base = SimulationConfig(
        n_dispatchers=50,
        n_patterns=35,
        publish_rate=50.0,
        error_rate=0.1,
        sim_time=7.0,
        measure_start=1.0,
        measure_end=3.5,
        buffer_size=1000,
        seed=3,
    )
    for algorithm in ("subscriber-pull", "eager-pull"):
        result = run_scenario(base.replace(algorithm=algorithm))
        print(
            f"{algorithm:>16s}: delivery {result.delivery_rate:6.1%}, "
            f"mean recovery-inclusive latency {result.delivery.mean_latency*1000:6.1f} ms, "
            f"gossip/event ratio {result.gossip_event_ratio:5.1%}"
        )
    print(
        "\nEager pull recovers faster (lower latency) at the price of more"
        " gossip\ntraffic -- the kind of variant the framework makes a"
        " ten-line experiment."
    )


if __name__ == "__main__":
    main()
