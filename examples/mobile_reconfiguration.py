#!/usr/bin/env python
"""Mobility scenario: recover events lost during overlay reconfiguration.

This is the scenario that motivated the paper (Section I): the dispatching
tree is continuously reconfigured -- as in a mobile or peer-to-peer setting
-- and events in flight across a breaking link are lost even though the
links themselves are reliable.

The script reproduces the structure of Figure 3(b): it runs the
non-overlapping (rho = 0.2 s) and overlapping (rho = 0.03 s) regimes and
prints, per algorithm, the aggregate delivery rate and the *worst* 0.1 s
bin of the delivery time series (the depth of the reconfiguration spikes),
plus an ASCII rendering of the no-recovery vs combined-pull time series.

Usage::

    python examples/mobile_reconfiguration.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_scenario
from repro.analysis.ascii_chart import ascii_chart
from repro.analysis.tables import format_table


def run_regime(interval: float) -> None:
    base = SimulationConfig(
        n_dispatchers=50,
        n_patterns=35,
        publish_rate=50.0,
        error_rate=0.0,  # links are reliable; loss comes from churn
        reconfiguration_interval=interval,
        repair_delay=0.1,
        buffer_size=1000,
        sim_time=8.0,
        measure_start=1.0,
        measure_end=5.0,
        seed=11,
    )
    kind = "overlapping" if interval < base.repair_delay else "non-overlapping"
    print(f"\n=== rho = {interval}s ({kind} reconfigurations) ===")

    rows = []
    series = {}
    for algorithm in ("none", "subscriber-pull", "push", "combined-pull"):
        result = run_scenario(base.replace(algorithm=algorithm))
        window = result.series.clipped(base.measure_start, base.effective_measure_end)
        rows.append(
            (
                algorithm,
                f"{result.delivery_rate:.3f}",
                f"{window.min_value():.3f}",
                result.reconfigurations,
            )
        )
        if algorithm in ("none", "combined-pull"):
            series[algorithm] = window.defined()
    print(
        format_table(
            ["algorithm", "delivery", "worst 0.1s bin", "reconfigurations"], rows
        )
    )
    print()
    print(
        ascii_chart(
            series,
            title="delivery rate vs publish time (o = none, x = combined-pull)",
            y_min=0.0,
            y_max=1.0,
            height=12,
        )
    )


def main() -> None:
    print("Reliable links, reconfiguring overlay (Figure 3(b) scenario).")
    run_regime(0.2)
    run_regime(0.03)
    print(
        "\nRecovery levels out the spikes that reconfigurations carve into"
        " delivery:\nthe combined pull curve stays near 1.0 while the"
        " baseline dips after each break."
    )


if __name__ == "__main__":
    main()
