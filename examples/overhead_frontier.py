#!/usr/bin/env python
"""Choosing an algorithm: delivery vs. overhead across network conditions.

Figures 9 and 10 of the paper study the *cost* of reliability.  This
script runs the two production candidates (push and combined pull) plus
the no-recovery baseline across a grid of link error rates and prints, for
each condition, delivery and the gossip overhead -- ending with the rule
of thumb the paper's Section IV-E derives:

* mostly reliable network and/or bursty load  -> reactive pull (it skips
  idle rounds and pays only for actual losses);
* persistently lossy network under high load  -> push and combined pull
  are equivalent on delivery; pick by latency tolerance and buffer budget.

Usage::

    python examples/overhead_frontier.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_scenario
from repro.analysis.tables import format_table


def main() -> None:
    base = SimulationConfig(
        n_dispatchers=50,
        n_patterns=35,
        publish_rate=50.0,
        buffer_size=1000,
        sim_time=7.0,
        measure_start=1.0,
        measure_end=3.5,
        seed=17,
    )
    rows = []
    for error_rate in (0.01, 0.05, 0.1):
        for algorithm in ("none", "push", "combined-pull"):
            result = run_scenario(
                base.replace(algorithm=algorithm, error_rate=error_rate)
            )
            rows.append(
                (
                    error_rate,
                    algorithm,
                    f"{result.delivery_rate:.3f}",
                    f"{result.gossip_per_dispatcher:.0f}",
                    f"{result.gossip_event_ratio:.3f}",
                    f"{result.delivery.mean_recovery_latency*1000:.0f}ms",
                )
            )
    print(
        format_table(
            [
                "eps",
                "algorithm",
                "delivery",
                "gossip/disp",
                "gossip/event",
                "recovery latency",
            ],
            rows,
            title="Delivery vs overhead across link error rates (Figs 9-10)",
        )
    )
    print(
        "\nRule of thumb (paper, Section IV-E): at low error rates the"
        " reactive pull\nsends a small fraction of push's traffic for the"
        " same delivery; as the\nnetwork degrades the two meet.  Tune T"
        " and beta for finer control\n(see examples/tuning_gossip.py)."
    )


if __name__ == "__main__":
    main()
