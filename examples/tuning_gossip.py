#!/usr/bin/env python
"""Tuning the gossip knobs: the delivery/overhead trade-off.

Section IV-C of the paper: the gossip interval T and the buffer size β are
the levers an operator tunes.  This script sweeps both for the combined
pull algorithm (the paper's Figure 5) and prints the resulting
delivery/overhead frontier so you can pick an operating point.

Usage::

    python examples/tuning_gossip.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_scenario
from repro.analysis.tables import format_table


def main() -> None:
    base = SimulationConfig(
        n_dispatchers=50,
        n_patterns=35,
        publish_rate=50.0,
        error_rate=0.1,
        algorithm="combined-pull",
        sim_time=7.0,
        measure_start=1.0,
        measure_end=3.5,
        seed=21,
    )

    rows = []
    for beta in (200, 600, 1200):
        for interval in (0.01, 0.03, 0.06):
            config = base.replace(buffer_size=beta, gossip_interval=interval)
            result = run_scenario(config)
            rows.append(
                (
                    beta,
                    f"{config.estimated_persistence():.1f}s",
                    interval,
                    f"{result.delivery_rate:.3f}",
                    f"{result.gossip_per_dispatcher:.0f}",
                    f"{result.gossip_event_ratio:.3f}",
                )
            )
    print(
        format_table(
            [
                "beta",
                "persistence",
                "T",
                "delivery",
                "gossip/disp",
                "gossip/event",
            ],
            rows,
            title="Combined pull: delivery vs overhead across (beta, T)",
        )
    )
    print(
        "\nReading the frontier: a bigger buffer compensates for a slower"
        " gossip\nrate (Figure 5); past a threshold, extra buffer stops"
        " helping.  Overhead\nscales with 1/T, so pick the largest T that"
        " still meets your delivery\ntarget, then size beta to match."
    )


if __name__ == "__main__":
    main()
