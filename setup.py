"""Thin shim for legacy editable installs (offline environments without
the ``wheel`` package cannot build PEP 660 editable wheels).  All project
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
